//! Throttled progress reporting for long sweeps.
//!
//! A [`Progress`] is shared by reference across parallel workers: ticks
//! are a relaxed atomic add, and at most one worker at a time (via a
//! `try_lock`) formats a stderr line, so the chunk-stealing sweep loop
//! never serialises on reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A progress reporter over a known number of work items.
///
/// Disabled by default in the CLI; `--progress` enables it. Lines look
/// like:
///
/// ```text
/// progress[sweep]: 24/88 points (27.3%) elapsed 2.1s eta 5.6s
/// ```
///
/// # Examples
///
/// ```
/// use mlc_obs::Progress;
///
/// let p = Progress::disabled();
/// p.tick(10); // counted, but never printed
/// assert_eq!(p.done(), 10);
/// ```
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    done: AtomicU64,
    start: Instant,
    interval: Duration,
    last_report: Mutex<Option<Instant>>,
}

impl Progress {
    /// A reporter that prints to stderr, at most every 500 ms.
    pub fn new(label: &str, total: u64) -> Self {
        Progress {
            enabled: true,
            label: label.to_owned(),
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            interval: Duration::from_millis(500),
            last_report: Mutex::new(None),
        }
    }

    /// A reporter that counts ticks but never prints.
    pub fn disabled() -> Self {
        let mut p = Progress::new("", 0);
        p.enabled = false;
        p
    }

    /// Overrides the minimum interval between printed lines.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Records `n` completed work items, printing a throttled report.
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !self.enabled {
            return;
        }
        // Only one worker formats a line; the rest skip past the lock.
        if let Ok(mut last) = self.last_report.try_lock() {
            let due = last.is_none_or(|at| at.elapsed() >= self.interval);
            if due && done < self.total {
                *last = Some(Instant::now());
                self.report(done);
            }
        }
    }

    /// Work items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Prints the final line (always, when enabled) — call once the work
    /// is complete.
    pub fn finish(&self) {
        if self.enabled {
            let done = self.done();
            let elapsed = self.start.elapsed().as_secs_f64();
            eprintln!(
                "progress[{}]: {done}/{} points (100.0%) in {elapsed:.1}s",
                self.label, self.total,
            );
        }
    }

    fn report(&self, done: u64) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let pct = if self.total > 0 {
            100.0 * done as f64 / self.total as f64
        } else {
            0.0
        };
        let eta = if done > 0 && self.total > done {
            elapsed / done as f64 * (self.total - done) as f64
        } else {
            0.0
        };
        eprintln!(
            "progress[{}]: {done}/{} points ({pct:.1}%) elapsed {elapsed:.1}s eta {eta:.1}s",
            self.label, self.total,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate() {
        let p = Progress::disabled();
        p.tick(3);
        p.tick(4);
        assert_eq!(p.done(), 7);
    }

    #[test]
    fn parallel_ticks_are_not_lost() {
        let p = Progress::disabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for _ in 0..500 {
                        p.tick(1);
                    }
                });
            }
        });
        assert_eq!(p.done(), 2000);
    }

    #[test]
    fn enabled_reporter_counts_too() {
        // Interval of zero would print on every tick; keep it long so the
        // test stays silent apart from the state we assert on.
        let p = Progress::new("test", 10).with_interval(Duration::from_secs(3600));
        p.tick(10);
        assert_eq!(p.done(), 10);
    }
}
