//! The run manifest: a JSON sidecar that makes a run reproducible and
//! auditable.
//!
//! A manifest answers "exactly what produced this output?": tool and
//! version, the full command line, the trace (path, record count,
//! warm-up split, content digest), the engine, every resolved
//! parameter, and per-phase wall-clock timings. Everything except the
//! `timings` section is a pure function of the inputs, and every timing
//! key ends in `_ms` — so CI verifies provenance determinism by running
//! a tool twice and diffing the manifests with `_ms` lines stripped.

use std::io;
use std::path::Path;

use crate::json::JsonValue;
use crate::metrics::MetricsSnapshot;

/// Schema identifier stamped into every manifest.
pub const MANIFEST_SCHEMA: &str = "mlc-manifest/1";

/// Builder and serializer for a run manifest; see the module docs.
///
/// # Examples
///
/// ```
/// use mlc_obs::RunManifest;
///
/// let mut m = RunManifest::new("mlc-sweep", "0.1.0");
/// m.command(["--trace".into(), "t.din".into()]);
/// m.trace("t.din", 60_000, 15_000, "fnv1a64:0011223344556677");
/// m.engine("onepass");
/// m.param("l2_ways", 1u64);
/// let json = m.to_json();
/// assert!(json.contains("\"schema\": \"mlc-manifest/1\""));
/// assert!(json.contains("\"digest\": \"fnv1a64:0011223344556677\""));
/// ```
#[derive(Debug, Clone)]
pub struct RunManifest {
    tool: String,
    version: String,
    command: Vec<String>,
    trace: Option<(String, u64, u64, String)>,
    engine: Option<String>,
    params: Vec<(String, JsonValue)>,
    timings: Vec<(String, f64)>,
}

impl RunManifest {
    /// Starts a manifest for `tool` (e.g. `"mlc-sweep"`) at `version`
    /// (pass `env!("CARGO_PKG_VERSION")`).
    pub fn new(tool: &str, version: &str) -> Self {
        RunManifest {
            tool: tool.to_owned(),
            version: version.to_owned(),
            command: Vec::new(),
            trace: None,
            engine: None,
            params: Vec::new(),
            timings: Vec::new(),
        }
    }

    /// The tool name this manifest was created with.
    pub fn tool(&self) -> &str {
        &self.tool
    }

    /// The tool version this manifest was created with.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Records the command-line arguments (conventionally without the
    /// binary path, so the manifest does not depend on install location).
    pub fn command<I: IntoIterator<Item = String>>(&mut self, args: I) {
        self.command = args.into_iter().collect();
    }

    /// Records the input trace: path, record count, how many leading
    /// records are warm-up, and the content digest
    /// (see [`crate::digest_records_hex`]).
    pub fn trace(&mut self, path: &str, records: u64, warmup_records: u64, digest: &str) {
        self.trace = Some((path.to_owned(), records, warmup_records, digest.to_owned()));
    }

    /// Records the engine choice (e.g. `"onepass"`).
    pub fn engine(&mut self, name: &str) {
        self.engine = Some(name.to_owned());
    }

    /// Appends one resolved parameter; insertion order is preserved in
    /// the output. Accepts anything convertible to [`JsonValue`]
    /// (strings, integers, floats, bools, or prebuilt arrays).
    pub fn param(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.params.push((key.to_owned(), value.into()));
    }

    /// Replaces the timings section with the phase timers of `snapshot`.
    /// Each phase `name` becomes the key `<name>_ms`.
    pub fn set_timings(&mut self, snapshot: &MetricsSnapshot) {
        self.timings = snapshot
            .phases
            .iter()
            .map(|(name, stat)| (format!("{name}_ms"), stat.wall_ms()))
            .collect();
    }

    /// Renders the manifest as pretty-printed JSON, one field per line.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("schema".into(), MANIFEST_SCHEMA.into()),
            ("tool".into(), self.tool.as_str().into()),
            ("version".into(), self.version.as_str().into()),
            (
                "command".into(),
                JsonValue::Array(self.command.iter().map(|a| a.as_str().into()).collect()),
            ),
        ];
        if let Some((path, records, warmup, digest)) = &self.trace {
            fields.push((
                "trace".into(),
                JsonValue::object([
                    ("path".into(), path.as_str().into()),
                    ("records".into(), (*records).into()),
                    ("warmup_records".into(), (*warmup).into()),
                    ("digest".into(), digest.as_str().into()),
                ]),
            ));
        }
        if let Some(engine) = &self.engine {
            fields.push(("engine".into(), engine.as_str().into()));
        }
        fields.push((
            "params".into(),
            JsonValue::Object(
                self.params
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        ));
        fields.push((
            "timings".into(),
            JsonValue::Object(
                self.timings
                    .iter()
                    // Timing values are rounded to microseconds so the
                    // floats render compactly; keys all end in `_ms`.
                    .map(|(k, ms)| (k.clone(), JsonValue::F64((ms * 1000.0).round() / 1000.0)))
                    .collect(),
            ),
        ));
        JsonValue::Object(fields).to_string_pretty()
    }

    /// Writes [`RunManifest::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::time::Duration;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("mlc-test", "1.2.3");
        m.command(["--trace".into(), "t.din".into()]);
        m.trace("t.din", 100, 25, "fnv1a64:00000000000000ff");
        m.engine("onepass");
        m.param("ways", 2u64);
        m.param("sizes", JsonValue::Array(vec!["16K".into(), "32K".into()]));
        m
    }

    #[test]
    fn renders_one_field_per_line() {
        let json = sample().to_json();
        for needle in [
            "\"schema\": \"mlc-manifest/1\"",
            "\"tool\": \"mlc-test\"",
            "\"version\": \"1.2.3\"",
            "\"command\": [\"--trace\", \"t.din\"]",
            "\"records\": 100",
            "\"warmup_records\": 25",
            "\"digest\": \"fnv1a64:00000000000000ff\"",
            "\"engine\": \"onepass\"",
            "\"ways\": 2",
            "\"sizes\": [\"16K\", \"32K\"]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
            // One field per line: each needle must sit on its own line.
            assert!(
                json.lines().any(|l| l.contains(needle)),
                "{needle} spans lines in:\n{json}"
            );
        }
    }

    #[test]
    fn timing_keys_all_end_in_ms() {
        let metrics = Metrics::enabled();
        metrics.record_phase("read_trace", Duration::from_millis(5));
        metrics.record_phase("grid.size.64K", Duration::from_micros(1500));
        let mut m = sample();
        m.set_timings(&metrics.snapshot());
        let json = m.to_json();
        assert!(json.contains("\"read_trace_ms\": 5"), "{json}");
        assert!(json.contains("\"grid.size.64K_ms\": 1.5"), "{json}");
        // The determinism contract: every line inside `timings` matches
        // the `_ms"` strip pattern used by CI.
        let mut in_timings = false;
        for line in json.lines() {
            if line.contains("\"timings\"") {
                in_timings = true;
                continue;
            }
            if in_timings && line.trim().starts_with('"') {
                assert!(line.contains("_ms\""), "timing line without _ms: {line}");
            }
        }
    }

    #[test]
    fn non_timing_fields_are_deterministic() {
        // Two "runs" with identical inputs but different wall times.
        let mut a = sample();
        let mut b = sample();
        let run = |ms: u64| {
            let metrics = Metrics::enabled();
            metrics.record_phase("read_trace", Duration::from_millis(ms));
            metrics.snapshot()
        };
        a.set_timings(&run(3));
        b.set_timings(&run(7));
        let strip = |s: String| -> Vec<String> {
            s.lines()
                .filter(|l| !l.contains("_ms\""))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(strip(a.to_json()), strip(b.to_json()));
    }
}
