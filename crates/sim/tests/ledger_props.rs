//! Ledger-conservation property tests: the cycle-attribution buckets
//! must sum exactly to `SimResult::total_cycles` on randomized synthetic
//! traces across machine shapes — single-level, the paper's base
//! machine, a three-level hierarchy, write-through L1s, and starved
//! write buffers. Also pins the `refresh_wait_ticks` unit contract on a
//! fixed trace.

use mlc_cache::{ByteSize, CacheConfig, WritePolicy};
use mlc_obs::EventTracer;
use mlc_sim::machine::{base_machine, single_level, BaseMachine};
use mlc_sim::{HierarchySim, LevelCacheConfig, LevelConfig};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

fn preset_trace(preset: Preset, n: usize, seed: u64) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(preset.config(seed))
        .expect("presets are valid")
        .generate_records(n)
}

fn machines() -> Vec<(&'static str, mlc_sim::HierarchyConfig)> {
    let small = CacheConfig::builder()
        .total(ByteSize::kib(4))
        .block_bytes(16)
        .build()
        .unwrap();
    let wt = CacheConfig::builder()
        .total(ByteSize::kib(2))
        .block_bytes(16)
        .write_policy(WritePolicy::WriteThrough)
        .build()
        .unwrap();
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(2))
        .block_bytes(32)
        .build()
        .unwrap();

    let mut deeper = base_machine();
    deeper
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));

    let mut starved = base_machine();
    for level in &mut starved.levels {
        level.write_buffer_entries = 1;
    }

    let mut wt_l1 = single_level(wt, 1, 10.0, 1.0);
    wt_l1.levels[0].write_buffer_entries = 2;

    vec![
        ("base", base_machine()),
        ("single-level", single_level(small, 2, 10.0, 1.0)),
        ("three-level", deeper),
        ("write-through-l1", wt_l1),
        ("starved-buffers", starved),
        (
            "slow-memory",
            BaseMachine::new().memory_scale(3.0).build().unwrap(),
        ),
    ]
}

/// Conservation must hold on every (machine × workload × seed) cell,
/// with and without a warm-up reset in the middle.
#[test]
fn ledger_conserves_over_randomized_traces() {
    let presets = [Preset::Mips1, Preset::Vms1, Preset::Ultrix];
    for (name, config) in machines() {
        for (p, &preset) in presets.iter().enumerate() {
            for seed in 0..3u64 {
                let trace = preset_trace(preset, 12_000, seed * 101 + p as u64 + 1);
                // Straight run.
                let mut sim = HierarchySim::new(config.clone()).unwrap();
                sim.run(trace.iter().copied());
                let r = sim.result();
                assert_eq!(
                    sim.ledger().total(),
                    r.total_cycles,
                    "conservation broke: {name}, {preset:?}, seed {seed}"
                );
                // Warm-up reset mid-trace.
                let mut sim = HierarchySim::new(config.clone()).unwrap();
                for rec in &trace[..4_000] {
                    sim.step(*rec);
                }
                sim.reset_measurement();
                for rec in &trace[4_000..] {
                    sim.step(*rec);
                }
                assert_eq!(
                    sim.ledger().total(),
                    sim.result().total_cycles,
                    "conservation broke after reset: {name}, {preset:?}, seed {seed}"
                );
            }
        }
    }
}

/// The ledger decomposition must be consistent with the legacy aggregate
/// counters: execute cycles equal the cycles the CPU actually opened,
/// and the stall buckets sum to total minus execute.
#[test]
fn ledger_buckets_complement_execute() {
    for (name, config) in machines() {
        let trace = preset_trace(Preset::Mips2, 15_000, 7);
        let mut sim = HierarchySim::new(config).unwrap();
        sim.run(trace);
        let ledger = sim.ledger();
        let r = sim.result();
        let stall_buckets = ledger.read_miss_total()
            + ledger.write_buffer_full
            + ledger.writeback
            + ledger.refresh_wait;
        assert_eq!(
            ledger.execute + stall_buckets,
            r.total_cycles,
            "{name}: {ledger:?}"
        );
        assert!(
            ledger.execute >= r.instructions,
            "{name}: every instruction opens at least its base cycle"
        );
        assert!(
            stall_buckets >= r.read_stall_cycles,
            "{name}: read stalls are a subset of the attributed stall"
        );
    }
}

/// An attached tracer must not perturb timing or attribution, and its
/// sampled events must agree with the ledger's clock.
#[test]
fn tracer_is_timing_neutral() {
    let trace = preset_trace(Preset::Vms2, 10_000, 3);
    let mut plain = HierarchySim::new(base_machine()).unwrap();
    plain.run(trace.iter().copied());
    let mut traced = HierarchySim::new(base_machine()).unwrap();
    traced.attach_tracer(EventTracer::new(64));
    traced.run(trace.iter().copied());
    assert_eq!(plain.result(), traced.result());
    assert_eq!(plain.ledger(), traced.ledger());
    let tracer = traced.take_tracer().unwrap();
    assert!(!tracer.events().is_empty());
    let total = traced.result().total_cycles;
    for ev in tracer.events() {
        assert!(ev.start_cycle < total, "event issued inside the run");
        assert!(ev.stall_cycles <= ev.cycles.max(1));
        assert!((ev.serviced as usize) <= 2, "base machine depth + memory");
    }
    // Sampling is every-64th: indices are exactly the multiples of 64.
    for (i, ev) in tracer.events().iter().enumerate() {
        assert_eq!(ev.index, i as u64 * 64);
    }
}

/// Histogram sample counts stay consistent with the cache statistics
/// they summarise.
#[test]
fn histogram_counts_track_cache_stats() {
    let trace = preset_trace(Preset::Mips1, 20_000, 11);
    let mut sim = HierarchySim::new(base_machine()).unwrap();
    sim.run(trace);
    let r = sim.result();
    let hists = sim.histograms();
    let l1_read_misses = r.levels[0].cache.read_misses();
    assert!(hists.read_miss_latency[0].count() > 0);
    assert!(
        hists.read_miss_latency[0].count() <= l1_read_misses,
        "demand fetches cannot exceed read misses"
    );
    // Every inter-miss gap but the first miss's is recorded.
    assert!(hists.inter_miss_distance.count() < hists.read_miss_latency[0].count());
    // L1 miss latency is bounded below by the L2 access time and spans
    // at least the L2-hit / memory-miss bimodality on the base machine.
    assert!(hists.read_miss_latency[0].max() >= 27);
    let occupancy = &hists.write_buffer_occupancy;
    assert_eq!(occupancy.count(), {
        let enqueued: u64 = r.levels.iter().map(|l| l.write_buffer.enqueued).sum();
        enqueued
    });
    assert!(occupancy.max() <= 4, "base machine buffers hold 4 entries");
}

/// Pins the refresh-wait unit contract on a fixed thrashing trace: the
/// value is in CPU cycles (ticks == cycles in `mlc-sim` integrations),
/// the conversion helpers agree, and the critical-path subset of it
/// lands in the ledger's `refresh_wait` bucket.
#[test]
fn refresh_wait_units_regression() {
    let cache = CacheConfig::builder()
        .total(ByteSize::new(64))
        .block_bytes(16)
        .build()
        .unwrap();
    let config = single_level(cache, 1, 10.0, 1.0);
    let mut sim = HierarchySim::new(config).unwrap();
    for i in 0..100u64 {
        sim.step(TraceRecord::read(if i % 2 == 0 { 0x0 } else { 0x40 }));
    }
    let r = sim.result();
    let events = r.event_counts();
    // Pinned on this exact trace/machine: 100 ping-pong reads, every one
    // a miss, memory gap 12 ticks at 10 ns cycles.
    assert_eq!(r.total_cycles, 2991);
    assert_eq!(events.refresh_wait_ticks, 891);
    assert_eq!(events.refresh_wait_cycles(), 891);
    assert!((events.refresh_wait_ns(r.cpu_cycle_ns) - 8910.0).abs() < 1e-9);
    // Clean reads: every memory wait is on the demand critical path, so
    // the ledger bucket captures all of it.
    assert_eq!(sim.ledger().refresh_wait, 891);
    assert_eq!(
        sim.ledger().total(),
        r.total_cycles,
        "conservation on the pinned trace"
    );
}
