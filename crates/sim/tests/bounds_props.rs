//! The sim-vs-bounds oracle: for every machine shape and synthetic
//! trace below, the simulator's measured per-level read-miss counts
//! must fall inside the static analyzer's guaranteed `[lo, hi]`
//! bounds. A violation means either the simulator's replacement /
//! routing logic or the analyzer's abstract transfer functions is
//! wrong — one property test guarding both subsystems at once.

use mlc_cache::{ByteSize, CacheConfig};
use mlc_sim::machine::{base_machine, single_level, BaseMachine};
use mlc_sim::{simulate, HierarchyConfig, LevelCacheConfig, LevelConfig, SimResult};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;
use mlc_wcet::{analyze, BoundsReport};

/// A deterministic xorshift generator — the suite must reproduce
/// exactly across runs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random trace over a bounded footprint: mostly loops (re-use) with
/// occasional strides and jumps, mixing ifetch/load/store when asked.
fn synth_trace(
    seed: u64,
    records: usize,
    footprint_bytes: u64,
    with_writes: bool,
) -> Vec<TraceRecord> {
    let mut rng = Rng::new(seed);
    let mut out = Vec::with_capacity(records);
    let mut pc = rng.below(footprint_bytes);
    let mut data = rng.below(footprint_bytes);
    for _ in 0..records {
        match rng.below(10) {
            // Sequential instruction fetch with occasional branches.
            0..=4 => {
                pc = if rng.below(16) == 0 {
                    rng.below(footprint_bytes)
                } else {
                    (pc + 4) % footprint_bytes
                };
                out.push(TraceRecord::ifetch(pc));
            }
            // Data loads clustered around a moving pointer.
            5..=7 => {
                data = if rng.below(8) == 0 {
                    rng.below(footprint_bytes)
                } else {
                    (data + rng.below(64)) % footprint_bytes
                };
                out.push(TraceRecord::read(data));
            }
            // Stores to the same working set.
            _ => {
                let addr = (data + rng.below(256)) % footprint_bytes;
                if with_writes {
                    out.push(TraceRecord::write(addr));
                } else {
                    out.push(TraceRecord::read(addr));
                }
            }
        }
    }
    out
}

/// The six machine shapes of the oracle suite.
fn machines() -> Vec<(&'static str, HierarchyConfig)> {
    let solo_dm = CacheConfig::builder()
        .total(ByteSize::kib(4))
        .block_bytes(16)
        .build()
        .expect("valid cache");
    let solo_assoc = CacheConfig::builder()
        .total(ByteSize::kib(8))
        .block_bytes(32)
        .ways(4)
        .build()
        .expect("valid cache");
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(2))
        .block_bytes(32)
        .ways(4)
        .build()
        .expect("valid cache");
    let mut three_level = base_machine();
    three_level
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));
    let tiny = BaseMachine::new()
        .l1_total(ByteSize::new(256))
        .l2_total(ByteSize::kib(1))
        .l2_block_bytes(16)
        .build()
        .expect("valid machine");
    vec![
        ("base", base_machine()),
        (
            "base-assoc",
            BaseMachine::new()
                .l1_ways(2)
                .l2_ways(4)
                .build()
                .expect("valid machine"),
        ),
        ("solo-dm", single_level(solo_dm, 1, 10.0, 1.0)),
        ("solo-4way", single_level(solo_assoc, 1, 10.0, 1.0)),
        ("three-level", three_level),
        ("tiny-thrash", tiny),
    ]
}

/// Runs the cold simulation and asserts the oracle for one pair.
fn assert_oracle(
    name: &str,
    config: &HierarchyConfig,
    records: &[TraceRecord],
) -> (BoundsReport, SimResult) {
    let report = analyze(config, records).expect("machine is in the supported subset");
    let result = simulate(config.clone(), records.iter().copied()).expect("simulates");
    assert_eq!(report.levels.len(), result.levels.len(), "{name}");
    for (i, (b, l)) in report.levels.iter().zip(&result.levels).enumerate() {
        let measured = l.cache.read_misses();
        assert!(
            b.lo <= measured && measured <= b.hi,
            "{name} L{}: measured {measured} outside [{}, {}] \
             (AH {} AM {} FM {} NC {} filtered {})",
            i + 1,
            b.lo,
            b.hi,
            b.always_hit,
            b.always_miss,
            b.first_miss,
            b.not_classified,
            b.filtered,
        );
        assert!(b.hi <= b.reads_max, "{name} L{}", i + 1);
    }
    (report, result)
}

#[test]
fn oracle_holds_on_read_only_traces() {
    for (name, config) in machines() {
        for seed in [1, 2, 3] {
            // Footprints from cache-resident to thrashing.
            for footprint in [1 << 10, 16 << 10, 256 << 10] {
                let trace = synth_trace(seed * 1021, 4000, footprint, false);
                assert_oracle(name, &config, &trace);
            }
        }
    }
}

#[test]
fn oracle_holds_with_write_traffic() {
    for (name, config) in machines() {
        for seed in [4, 5, 6] {
            for footprint in [1 << 10, 64 << 10] {
                let trace = synth_trace(seed * 2693, 4000, footprint, true);
                assert_oracle(name, &config, &trace);
            }
        }
    }
}

#[test]
fn oracle_holds_on_preset_workloads() {
    for (name, config) in machines() {
        for preset in [Preset::Mips1, Preset::Vms1] {
            let trace = MultiProgramGenerator::new(preset.config(11))
                .expect("valid preset")
                .generate_records(6000);
            assert_oracle(name, &config, &trace);
        }
    }
}

#[test]
fn bounds_are_nontrivial_on_a_looping_workload() {
    // A loop over a cache-resident working set: the analysis must prove
    // both that some misses are unavoidable (lo > 0, the cold fills)
    // and that most accesses hit (hi strictly below the read count).
    let config = base_machine();
    let mut trace = Vec::new();
    for _ in 0..50 {
        for b in 0..8u64 {
            trace.push(TraceRecord::ifetch(b * 16));
            trace.push(TraceRecord::read(0x1000 + b * 16));
        }
    }
    let (report, result) = assert_oracle("loop", &config, &trace);
    let l1 = &report.levels[0];
    assert!(l1.lo > 0, "cold fills are guaranteed misses");
    assert!(
        l1.hi < l1.reads_max,
        "hi {} must beat the trivial bound {}",
        l1.hi,
        l1.reads_max
    );
    // On this trace the bounds are exact: 16 cold fills, nothing else.
    assert_eq!(l1.lo, 16);
    assert_eq!(l1.hi, 16);
    assert_eq!(result.levels[0].cache.read_misses(), 16);
}

#[test]
fn growing_associativity_never_raises_the_upper_bound() {
    // Fixed set count (total scales with ways): a strictly larger LRU
    // cache can only remove guaranteed misses, never add them.
    let trace = synth_trace(97, 4000, 32 << 10, false);
    let mut last_hi: Option<u64> = None;
    for ways in [1u32, 2, 4] {
        let cache = CacheConfig::builder()
            .total(ByteSize::new(4096 * u64::from(ways)))
            .block_bytes(16)
            .ways(ways)
            .build()
            .expect("valid cache");
        let config = single_level(cache, 1, 10.0, 1.0);
        let (report, _) = assert_oracle("mono", &config, &trace);
        let hi = report.levels[0].hi;
        if let Some(prev) = last_hi {
            assert!(
                hi <= prev,
                "hi went up from {prev} to {hi} when ways grew to {ways}"
            );
        }
        last_hi = Some(hi);
    }
}

#[test]
fn unsupported_machines_are_rejected_not_mis_bounded() {
    use mlc_cache::Replacement;
    let fifo = CacheConfig::builder()
        .total(ByteSize::kib(4))
        .block_bytes(16)
        .ways(2)
        .replacement(Replacement::Fifo)
        .build()
        .expect("valid cache");
    let config = single_level(fifo, 1, 10.0, 1.0);
    let trace = synth_trace(7, 100, 1 << 10, false);
    assert!(analyze(&config, &trace).is_err());
}
