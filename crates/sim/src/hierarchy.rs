//! The trace-driven, timing-accurate multi-level hierarchy simulator.
//!
//! # Timing model
//!
//! Time is counted in integer CPU cycles ("ticks"). The CPU executes one
//! instruction fetch and at most one data access per non-stall cycle;
//! both issue at the cycle's start (the split L1 services them in
//! parallel) and the next cycle begins when every outstanding access of
//! the current cycle has completed.
//!
//! * A read that hits at a level completes after that level's
//!   `read_cycles`; delivering an upstream block wider than the bus costs
//!   one extra bus cycle per additional beat.
//! * A miss pays the level's own access time (its tag check) and then
//!   fetches from downstream, so a read that misses L1 and hits L2 costs
//!   `n_L1 + n_L2` — exactly the structure of the paper's Equation 1, and
//!   its "nominal cache miss penalty of 3 CPU cycles" for an L1 miss that
//!   hits a 3-cycle L2. The requester resumes when its whole block has
//!   arrived, as the paper specifies for both L1 and L2 misses.
//! * Dirty victims enter the evicting level's write buffer. Buffers drain
//!   *lazily*: whenever a demand request is about to use a level, queued
//!   writes that could have started in the level's preceding idle time
//!   are retired first (they may still be in service when the demand
//!   arrives — service is not preempted). A full buffer forces a
//!   synchronous drain, stalling the requester — the paper's
//!   buffer-full stall.
//! * Main memory serialises operations and enforces the refresh gap (see
//!   [`mlc_mem::MainMemory`]).

use mlc_cache::{CacheUnit, Fill, FillReason};
use mlc_mem::{BufferedWrite, Bus, MainMemory, MemOpKind, MemoryTiming};
use mlc_obs::{EventKind, EventTracer, SimEvent};
use mlc_trace::{AccessKind, Address, TraceRecord};

use crate::clock::Clock;
use crate::config::{HierarchyConfig, LevelCacheConfig, SimConfigError};
use crate::ledger::{Cause, CycleLedger, LedgerScratch, SimHistograms};
use crate::level::Level;
use crate::metrics::{LevelMetrics, SimResult};

/// The multi-level cache hierarchy simulator.
///
/// # Examples
///
/// Simulate a short synthetic workload on the paper's base machine:
///
/// ```
/// use mlc_sim::{machine, HierarchySim};
/// use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
///
/// let config = machine::base_machine();
/// let mut sim = HierarchySim::new(config)?;
/// let mut gen = MultiProgramGenerator::new(Preset::Mips1.config(1))
///     .expect("preset is valid");
/// sim.run(gen.generate_records(20_000));
/// let result = sim.result();
/// assert!(result.total_cycles >= result.instructions);
/// # Ok::<(), mlc_sim::SimConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HierarchySim {
    clock: Clock,
    levels: Vec<Level>,
    memory: MainMemory,
    now: u64,
    measure_start: u64,
    cycle_issue: u64,
    cycle_has_data: bool,
    instructions: u64,
    loads: u64,
    stores: u64,
    read_stall: u64,
    write_stall: u64,
    records: u64,
    ledger: CycleLedger,
    scratch: LedgerScratch,
    hists: SimHistograms,
    last_l0_read_miss: Option<u64>,
    tracer: Option<EventTracer>,
    #[cfg(feature = "check-invariants")]
    checker: InvariantChecker,
}

/// Bookkeeping for the runtime invariant checker (`check-invariants`
/// feature): the index of the record being processed and the clock value
/// observed after the previous one.
#[cfg(feature = "check-invariants")]
#[derive(Debug, Clone, Default)]
struct InvariantChecker {
    records: u64,
    last_now: u64,
}

/// How often (in trace records) the checker walks *every* set of every
/// cache instead of just the sets the current record touched.
#[cfg(feature = "check-invariants")]
const DEEP_CHECK_PERIOD: u64 = 1024;

impl HierarchySim {
    /// Builds a simulator from a hierarchy configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] if the configuration is invalid.
    pub fn new(config: HierarchyConfig) -> Result<Self, SimConfigError> {
        config.validate()?;
        let clock = Clock::new(config.cpu.cycle_ns);
        let mut levels = Vec::with_capacity(config.levels.len());
        for (i, lc) in config.levels.iter().enumerate() {
            let cache = match lc.cache {
                LevelCacheConfig::Unified(c) => CacheUnit::unified(c),
                LevelCacheConfig::Split { icache, dcache } => CacheUnit::split(icache, dcache),
            };
            let bus = Bus::new(lc.refill_bus_bytes, config.refill_bus_cycles(i));
            levels.push(Level::new(
                lc.name.clone(),
                cache,
                lc.read_cycles,
                lc.write_cycles,
                bus,
                lc.write_buffer_entries,
            ));
        }
        let timing = MemoryTiming::new(
            clock.ns_to_cycles(config.memory.read_ns).max(1),
            clock.ns_to_cycles(config.memory.write_ns).max(1),
            clock.ns_to_cycles(config.memory.gap_ns),
        );
        let depth = levels.len();
        Ok(HierarchySim {
            clock,
            levels,
            memory: MainMemory::new(timing),
            now: 0,
            measure_start: 0,
            cycle_issue: 0,
            cycle_has_data: true, // force a new cycle for a leading data ref
            instructions: 0,
            loads: 0,
            stores: 0,
            read_stall: 0,
            write_stall: 0,
            records: 0,
            ledger: CycleLedger::new(depth),
            scratch: LedgerScratch::default(),
            hists: SimHistograms::new(depth),
            last_l0_read_miss: None,
            tracer: None,
            #[cfg(feature = "check-invariants")]
            checker: InvariantChecker::default(),
        })
    }

    /// The simulator's CPU clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Current simulated time in CPU cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs every record of `records` through the hierarchy.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        for rec in records {
            self.step(rec);
        }
    }

    /// Processes a single trace record.
    pub fn step(&mut self, rec: TraceRecord) {
        let index = self.records;
        self.records += 1;
        self.scratch.begin();
        let old_now = self.now;
        // `exec` is the record's base execute cycle (1 when it opened a
        // cycle, 0 when it shares one); everything else the clock
        // advances this step is stall, reconciled into the ledger below.
        let (t, exec) = match rec.kind {
            AccessKind::InstructionFetch => {
                let t = self.now;
                let done = self.cpu_access(rec, t);
                self.instructions += 1;
                let end = done.max(t + 1);
                self.read_stall += end - (t + 1);
                self.now = end;
                self.cycle_issue = t;
                self.cycle_has_data = false;
                (t, 1)
            }
            AccessKind::Read | AccessKind::Write => {
                // A data reference executes in the cycle opened by the
                // preceding instruction fetch; a second data record (or a
                // data-only trace) opens a fresh cycle.
                let (t, exec) = if self.cycle_has_data {
                    self.cycle_issue = self.now;
                    self.now += 1; // the new cycle's base cycle
                    (self.cycle_issue, 1)
                } else {
                    (self.cycle_issue, 0)
                };
                self.cycle_has_data = true;
                let done = self.cpu_access(rec, t);
                if rec.kind == AccessKind::Write {
                    self.stores += 1;
                    self.write_stall += done.saturating_sub(t + 1);
                } else {
                    self.loads += 1;
                    // Only the extension beyond the cycle's current end is
                    // new stall (the ifetch may already have extended it).
                    self.read_stall += done.saturating_sub(self.now.max(t + 1));
                }
                self.now = self.now.max(done);
                (t, exec)
            }
        };
        let stall = (self.now - old_now) - exec;
        self.ledger
            .settle(&mut self.scratch, exec, stall, rec.kind.is_write());

        if let Some(tracer) = &mut self.tracer {
            if tracer.wants(index) {
                let serviced = self.scratch.deepest();
                tracer.push(SimEvent {
                    index,
                    kind: match rec.kind {
                        AccessKind::InstructionFetch => EventKind::Ifetch,
                        AccessKind::Read => EventKind::Read,
                        AccessKind::Write => EventKind::Write,
                    },
                    addr: rec.addr.get(),
                    start_cycle: t,
                    cycles: self.now - t,
                    stall_cycles: stall,
                    serviced,
                });
            }
        }

        #[cfg(feature = "check-invariants")]
        {
            self.check_invariants(rec);
            let attributed = self.ledger.total();
            let elapsed = self.now - self.measure_start;
            if attributed != elapsed {
                self.invariant_violation(
                    index,
                    rec,
                    &format!(
                        "cycle ledger broke conservation: {attributed} attributed \
                         vs {elapsed} elapsed"
                    ),
                );
            }
        }
    }

    /// Per-record invariant checks (`check-invariants` feature): simulated
    /// clock monotonicity, demand-fill inclusion at level 0, and the
    /// structural invariants of every touched cache set, with a periodic
    /// full-cache sweep. Panics with the violating trace-record index and a
    /// hierarchy state summary.
    #[cfg(feature = "check-invariants")]
    fn check_invariants(&mut self, rec: TraceRecord) {
        let index = self.checker.records;
        self.checker.records += 1;

        if self.now < self.checker.last_now {
            self.invariant_violation(
                index,
                rec,
                &format!(
                    "simulated clock moved backwards: {} -> {}",
                    self.checker.last_now, self.now
                ),
            );
        }
        self.checker.last_now = self.now;

        // Every read or instruction fetch leaves its demand block resident
        // at level 0 (hit, victim swap-in, or demand fill alike). Writes
        // are exempt: a no-write-allocate miss is forwarded downstream
        // without filling.
        if !rec.kind.is_write() && !self.levels[0].cache.contains_for(rec.addr, rec.kind) {
            self.invariant_violation(
                index,
                rec,
                "demand block not resident at level 0 after the access",
            );
        }

        let deep = index % DEEP_CHECK_PERIOD == DEEP_CHECK_PERIOD - 1;
        for j in 0..self.levels.len() {
            let result = if deep {
                self.levels[j].cache.verify_invariants()
            } else {
                self.levels[j]
                    .cache
                    .verify_invariants_at(rec.addr, rec.kind)
            };
            if let Err(msg) = result {
                let name = self.levels[j].name.clone();
                self.invariant_violation(index, rec, &format!("{name}: {msg}"));
            }
        }
    }

    /// Reports a runtime invariant violation: the failing trace-record
    /// index, the record itself, and each level's occupancy summary.
    #[cfg(feature = "check-invariants")]
    fn invariant_violation(&self, index: u64, rec: TraceRecord, msg: &str) -> ! {
        let mut state = String::new();
        for level in &self.levels {
            state.push_str(&format!(
                "\n  {}: {}, write buffer {} queued",
                level.name,
                level.cache.state_summary(),
                level.out_buffer.len(),
            ));
        }
        panic!(
            "hierarchy invariant violated at trace record {index} \
             ({:?} {:#x}): {msg}\nhierarchy state (now = {}):{state}",
            rec.kind,
            rec.addr.get(),
            self.now,
        );
    }

    /// Resets all statistics and starts a fresh measurement window at the
    /// current simulated time. Cache contents, buffer contents and all
    /// timing state are preserved — this is how warm-up references are
    /// discarded, mirroring the paper's removal of the cold-start region.
    pub fn reset_measurement(&mut self) {
        self.measure_start = self.now;
        self.instructions = 0;
        self.loads = 0;
        self.stores = 0;
        self.read_stall = 0;
        self.write_stall = 0;
        self.ledger.reset();
        self.hists.reset();
        self.last_l0_read_miss = None;
        for level in &mut self.levels {
            level.cache.reset_stats();
            level.out_buffer.reset_stats();
            level.fetched_bytes = 0;
            level.writeback_bytes = 0;
        }
        self.memory.reset_stats();
    }

    /// Snapshot of the current measurement window.
    pub fn result(&self) -> SimResult {
        SimResult {
            total_cycles: self.now - self.measure_start,
            instructions: self.instructions,
            cpu_reads: self.instructions + self.loads,
            loads: self.loads,
            stores: self.stores,
            read_stall_cycles: self.read_stall,
            write_stall_cycles: self.write_stall,
            cpu_cycle_ns: self.clock.cycle_ns(),
            levels: self
                .levels
                .iter()
                .map(|l| LevelMetrics {
                    name: l.name.clone(),
                    cache: l.cache.stats(),
                    write_buffer: l.out_buffer.stats(),
                    fetched_bytes: l.fetched_bytes,
                    writeback_bytes: l.writeback_bytes,
                })
                .collect(),
            memory: self.memory.stats(),
        }
    }

    /// The cycle-attribution ledger of the current measurement window.
    /// Its buckets sum exactly to [`SimResult::total_cycles`] — the
    /// conservation invariant the `check-invariants` feature re-asserts
    /// after every record.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Latency and occupancy histograms of the current measurement
    /// window.
    pub fn histograms(&self) -> &SimHistograms {
        &self.hists
    }

    /// The hierarchy level display names, upstream first — the labels
    /// for [`CycleLedger::rows`] and the event exports.
    pub fn level_names(&self) -> Vec<String> {
        self.levels.iter().map(|l| l.name.clone()).collect()
    }

    /// Attaches a sampled event tracer; subsequent records whose global
    /// index (counted from construction, warm-up included) matches the
    /// tracer's sampling period emit one [`SimEvent`] each.
    pub fn attach_tracer(&mut self, tracer: EventTracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer, returning it with its accumulated events.
    pub fn take_tracer(&mut self) -> Option<EventTracer> {
        self.tracer.take()
    }

    /// Drains every write buffer to completion (in upstream-to-downstream
    /// order). Does not advance the execution clock; used at end of
    /// simulation and by conservation tests.
    pub fn drain_all_buffers(&mut self) {
        for j in 0..self.levels.len() {
            while !self.levels[j].out_buffer.is_empty() {
                let t = self.levels[j].busy_any();
                self.drain_one(j, t);
            }
        }
    }

    /// Flushes all dirty cache blocks downstream (upstream levels first)
    /// and drains every buffer. After this, no dirty data remains above
    /// main memory.
    pub fn flush_all(&mut self) {
        for j in 0..self.levels.len() {
            let dirty = self.levels[j].cache.flush_dirty();
            let bytes = match &self.levels[j].cache {
                CacheUnit::Unified(c) => c.geometry().block_bytes(),
                // Dirty blocks only arise on the data side of a split level.
                CacheUnit::Split(s) => s.dcache().geometry().block_bytes(),
            };
            for addr in dirty {
                let t = self.levels[j].busy_any();
                self.push_writeback(j, addr, bytes, t);
            }
            // Cascade before flushing the next level so its buffer sees
            // everything from upstream.
            self.drain_all_buffers();
        }
    }

    // ------------------------------------------------------------------
    // CPU-side access (level 0)
    // ------------------------------------------------------------------

    fn cpu_access(&mut self, rec: TraceRecord, t: u64) -> u64 {
        let kind = rec.kind;
        let result = self.levels[0].cache.access(rec.addr, kind);
        let start = t.max(self.levels[0].busy_for(kind));

        self.scratch.touch(0);
        if result.hit {
            let dur = if kind.is_write() {
                self.levels[0].write_cycles
            } else {
                self.levels[0].read_cycles
            };
            let mut done = start + dur;
            self.scratch.record(Cause::Level(0), done - t);
            self.levels[0].set_busy(kind, done);
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = done.max(accepted);
            }
            return done;
        }

        if !kind.is_write() {
            // The record indices of consecutive level-0 read misses give
            // the inter-miss distance distribution (`records` was already
            // advanced for this record).
            let index = self.records - 1;
            if let Some(last) = self.last_l0_read_miss {
                self.hists.inter_miss_distance.record(index - last);
            }
            self.last_l0_read_miss = Some(index);
        }

        // The miss is detected after the level's own access time — the
        // n_L1 term of the paper's Equation 1 is paid on hits and misses
        // alike.
        let detected = start + self.levels[0].read_cycles;

        // Victim-buffer hit: a swap costing one extra access time, with
        // no downstream fetch.
        if result.victim_hit {
            let mut done = detected + self.levels[0].read_cycles;
            if kind.is_write() && !result.write_through {
                done += self.levels[0].write_cycles;
            }
            self.scratch.record(Cause::Level(0), done - t);
            self.levels[0].set_busy(kind, done);
            done = done.max(self.push_extra_writebacks(0, &result, done));
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = done.max(accepted);
            }
            return done;
        }

        // Miss with no allocation: forward the store downstream.
        if result.fills.is_empty() {
            debug_assert!(result.write_through, "read misses always fill");
            self.scratch.record(Cause::Level(0), detected - t);
            self.levels[0].set_busy(kind, detected);
            let accepted = self.push_writeback(0, rec.addr, 4, detected);
            return detected.max(accepted);
        }

        self.scratch.record(Cause::Level(0), detected - t);
        let need = self.levels[0].cache.block_bytes_for(kind);
        let (mut completion, chain) = self.service_fills(0, &result.fills, kind, need, detected);
        completion = completion.max(self.push_extra_writebacks(0, &result, completion));
        self.levels[0].set_busy(kind, chain);

        if kind.is_write() {
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, completion);
                completion = completion.max(accepted);
            } else {
                // Complete the allocating store into the freshly filled
                // block (the paper's 2-cycle write).
                completion += self.levels[0].write_cycles;
                self.scratch
                    .record(Cause::Level(0), self.levels[0].write_cycles);
                self.levels[0].set_busy(kind, completion);
            }
        }
        completion
    }

    /// Fetches every fill of a miss at level `idx` from downstream,
    /// demand block first. Returns `(demand completion, chain end)`:
    /// the requester resumes at the former; the level stays busy with
    /// non-critical fills until the latter.
    fn service_fills(
        &mut self,
        idx: usize,
        fills: &[Fill],
        kind: AccessKind,
        block_bytes: u64,
        start: u64,
    ) -> (u64, u64) {
        let mut completion = start;
        let mut chain = start;
        let ordered = fills
            .iter()
            .filter(|f| f.reason == FillReason::Demand)
            .chain(fills.iter().filter(|f| f.reason != FillReason::Demand));
        for fill in ordered {
            let demand = fill.reason == FillReason::Demand;
            // Non-demand fills (prefetched sectors, swap traffic) are off
            // the requester's critical path: the ledger must not see them.
            if !demand {
                self.scratch.push_suppress();
            }
            self.levels[idx].fetched_bytes += fill.bytes;
            let done = self.fetch_block(idx + 1, fill.block, kind, fill.bytes, chain);
            chain = done;
            let mut fin = done;
            if let Some(wb) = fill.writeback {
                let accepted = self.push_writeback(idx, wb, block_bytes, done);
                fin = fin.max(accepted);
                chain = chain.max(accepted);
            }
            if !demand {
                self.scratch.pop_suppress();
            }
            if demand {
                completion = fin;
            }
        }
        (completion, chain)
    }

    // ------------------------------------------------------------------
    // Downstream read path
    // ------------------------------------------------------------------

    /// Reads the block of `need_bytes` containing `addr` from level `idx`
    /// (or main memory when `idx` equals the depth), on behalf of level
    /// `idx - 1`. Returns when the block is available to the requester.
    fn fetch_block(
        &mut self,
        idx: usize,
        addr: Address,
        kind: AccessKind,
        need_bytes: u64,
        t: u64,
    ) -> u64 {
        let done = self.fetch_block_inner(idx, addr, kind, need_bytes, t);
        // The full entry-to-return latency is the read-miss latency of
        // the requesting level `idx - 1` (demand read paths only).
        if !self.scratch.suppressed() && !kind.is_write() {
            self.hists.read_miss_latency[idx - 1].record(done - t);
        }
        done
    }

    fn fetch_block_inner(
        &mut self,
        idx: usize,
        addr: Address,
        kind: AccessKind,
        need_bytes: u64,
        t: u64,
    ) -> u64 {
        if idx == self.levels.len() {
            return self.memory_read(addr, need_bytes, t);
        }
        // Give queued writes from upstream their idle window first, and
        // resolve any read-after-write hazard: if the requested block is
        // still sitting in the upstream write buffer, it must be written
        // down before the read may observe this level.
        self.drain_ready_before(idx - 1, t);
        let t = self.resolve_raw_hazard(idx - 1, addr, need_bytes, t);

        let result = self.levels[idx].cache.access(addr, kind);
        let start = t.max(self.levels[idx].busy_for(kind));
        let upstream_bus = self.levels[idx - 1].refill_bus;
        self.scratch.touch(idx as u32);

        if result.hit {
            let done = start + self.levels[idx].read_cycles;
            self.levels[idx].set_busy(kind, done);
            let ret = done + upstream_bus.extra_beat_ticks(need_bytes);
            self.scratch.record(Cause::Level(idx), ret - t);
            return ret;
        }

        // Tag check at this level (n_L2 in Equation 1) precedes the
        // downstream fetch.
        let detected = start + self.levels[idx].read_cycles;

        if result.victim_hit {
            // Swap from the victim buffer: one extra access time, no
            // downstream fetch.
            let mut done = detected + self.levels[idx].read_cycles;
            self.scratch.record(
                Cause::Level(idx),
                done + upstream_bus.extra_beat_ticks(need_bytes) - t,
            );
            self.levels[idx].set_busy(kind, done);
            done = done.max(self.push_extra_writebacks(idx, &result, done));
            return done + upstream_bus.extra_beat_ticks(need_bytes);
        }

        self.scratch.record(Cause::Level(idx), detected - t);
        let my_block = self.levels[idx].cache.block_bytes_for(kind);
        let (completion, chain) = self.service_fills(idx, &result.fills, kind, my_block, detected);
        let completion = completion.max(self.push_extra_writebacks(idx, &result, completion));
        self.levels[idx].set_busy(kind, chain);
        self.scratch
            .record(Cause::Level(idx), upstream_bus.extra_beat_ticks(need_bytes));
        completion + upstream_bus.extra_beat_ticks(need_bytes)
    }

    /// A main-memory block read issued at tick `t` over the deepest
    /// level's refill bus (the backplane): one address cycle, the memory
    /// operation (including any refresh-gap wait), then the data beats.
    fn memory_read(&mut self, addr: Address, need_bytes: u64, t: u64) -> u64 {
        let deepest = self.levels.len() - 1;
        self.drain_ready_before(deepest, t);
        let t = self.resolve_raw_hazard(deepest, addr, need_bytes, t);
        let bus = self.levels[deepest].refill_bus;
        let arrival = t + bus.address_ticks();
        let op = self.memory.schedule(arrival, MemOpKind::Read);
        let done = op.end + bus.data_ticks(need_bytes);
        // Address cycles, then the wait for the memory to free up (busy
        // serialisation + refresh gap), then the operation and data beats
        // — recorded in temporal order for the front-drop reconciliation.
        self.scratch.touch(self.levels.len() as u32);
        self.scratch.record(Cause::Memory, arrival - t);
        self.scratch.record(Cause::Refresh, op.start - arrival);
        self.scratch.record(Cause::Memory, done - op.start);
        done
    }

    /// Drains level `j`'s buffer until no queued entry overlaps the block
    /// about to be read from downstream (a read-after-write hazard: the
    /// freshest copy of the data is in the buffer, so it must reach the
    /// downstream level first). Returns when the hazard has cleared.
    fn resolve_raw_hazard(&mut self, j: usize, addr: Address, bytes: u64, t: u64) -> u64 {
        let mut cleared = t;
        // The whole hazard drain is one writeback lump on the requester's
        // critical path; the drains' internals must not record on top.
        self.scratch.push_suppress();
        while self.levels[j].out_buffer.overlaps(addr, bytes) {
            let earliest = self.levels[j]
                .out_buffer
                .front()
                .map(|e| e.ready_at)
                .unwrap_or(cleared);
            cleared = cleared.max(self.drain_one(j, cleared.max(earliest)));
        }
        self.scratch.pop_suppress();
        self.scratch.record(Cause::Writeback, cleared - t);
        cleared
    }

    // ------------------------------------------------------------------
    // Write path (buffers and drains)
    // ------------------------------------------------------------------

    /// Enqueues a write from level `j` toward level `j + 1`. If the buffer
    /// is full, the oldest entry is drained synchronously first (the
    /// paper's buffer-full stall). Returns the tick at which the entry was
    /// accepted — the producer cannot proceed earlier.
    fn push_writeback(&mut self, j: usize, addr: Address, bytes: u64, t: u64) -> u64 {
        let entry = BufferedWrite {
            addr,
            bytes,
            ready_at: t,
        };
        self.levels[j].writeback_bytes += bytes;
        if self.levels[j].out_buffer.try_push(entry) {
            self.hists
                .write_buffer_occupancy
                .record(self.levels[j].out_buffer.len() as u64);
            return t;
        }
        // Full: the producer waits for the oldest entry to retire. The
        // wait is one buffer-full lump; the drain's internals are not
        // separately on the producer's critical path.
        self.scratch.push_suppress();
        let accepted = t.max(self.drain_one(j, t));
        self.scratch.pop_suppress();
        self.scratch.record(Cause::BufferFull, accepted - t);
        let pushed = self.levels[j].out_buffer.try_push(BufferedWrite {
            addr,
            bytes,
            ready_at: accepted,
        });
        debug_assert!(pushed, "buffer must have space after forced drain");
        self.hists
            .write_buffer_occupancy
            .record(self.levels[j].out_buffer.len() as u64);
        accepted
    }

    /// Retires queued writes from level `j`'s buffer that could have
    /// started strictly before tick `t` (i.e. in the downstream's idle
    /// window). Demand traffic arriving at `t` has priority over writes
    /// that have not yet started.
    fn drain_ready_before(&mut self, j: usize, t: u64) {
        // Lazy drains run in the downstream's idle window, entirely off
        // the demand critical path.
        self.scratch.push_suppress();
        self.drain_ready_before_inner(j, t);
        self.scratch.pop_suppress();
    }

    fn drain_ready_before_inner(&mut self, j: usize, t: u64) {
        loop {
            let Some(front) = self.levels[j].out_buffer.front() else {
                return;
            };
            let downstream_free = if j + 1 == self.levels.len() {
                self.memory.busy_until()
            } else {
                self.levels[j + 1].busy_any()
            };
            let would_start = front.ready_at.max(downstream_free);
            if would_start >= t {
                return;
            }
            self.drain_one(j, would_start);
        }
    }

    /// Pops and retires the oldest entry of level `j`'s buffer, returning
    /// its completion time (or `earliest` if the buffer was empty).
    fn drain_one(&mut self, j: usize, earliest: u64) -> u64 {
        let Some(entry) = self.levels[j].out_buffer.pop() else {
            return earliest;
        };
        let start = earliest.max(entry.ready_at);
        self.write_downstream(j, entry, start)
    }

    /// Performs the downstream write of one buffered entry from level `j`
    /// into level `j + 1` (or main memory), returning its completion.
    fn write_downstream(&mut self, j: usize, entry: BufferedWrite, start: u64) -> u64 {
        let bus = self.levels[j].refill_bus;
        let target = j + 1;
        if target == self.levels.len() {
            let arrival = start + bus.transfer_ticks(entry.bytes);
            let op = self.memory.schedule(arrival, MemOpKind::Write);
            return op.end;
        }

        let result = self.levels[target]
            .cache
            .access(entry.addr, AccessKind::Write);
        // The first data beat overlaps the write's first cycle; extra
        // beats serialise before it, mirroring the read path.
        let arrival = start + bus.extra_beat_ticks(entry.bytes);
        let wstart = arrival.max(self.levels[target].busy_for(AccessKind::Write));

        let mut done = if result.hit {
            wstart + self.levels[target].write_cycles
        } else if result.victim_hit {
            wstart + self.levels[target].read_cycles + self.levels[target].write_cycles
        } else if result.fills.is_empty() {
            // No-write-allocate target: tag check, then forward further
            // down through the target's own buffer.
            let checked = wstart + self.levels[target].read_cycles;
            let accepted = self.push_writeback(target, entry.addr, entry.bytes, checked);
            checked.max(accepted)
        } else {
            let my_block = self.levels[target].cache.block_bytes_for(AccessKind::Write);
            let detected = wstart + self.levels[target].read_cycles;
            let (_, chain) =
                self.service_fills(target, &result.fills, AccessKind::Write, my_block, detected);
            chain + self.levels[target].write_cycles
        };

        if result.write_through {
            let accepted = self.push_writeback(target, entry.addr, entry.bytes, done);
            done = done.max(accepted);
        }
        done = done.max(self.push_extra_writebacks(target, &result, done));
        self.levels[target].set_busy(AccessKind::Write, done);
        done
    }

    /// Enqueues any victim-buffer ejections an access produced, returning
    /// the time the last one was accepted.
    fn push_extra_writebacks(&mut self, j: usize, result: &mlc_cache::AccessResult, t: u64) -> u64 {
        let mut accepted = t;
        if result.extra_writebacks.is_empty() {
            return accepted;
        }
        let bytes = match &self.levels[j].cache {
            CacheUnit::Unified(c) => c.geometry().block_bytes(),
            CacheUnit::Split(s) => s.dcache().geometry().block_bytes(),
        };
        // Several ejections push at the same tick; any stall the batch
        // causes is one buffer-full lump on the critical path.
        self.scratch.push_suppress();
        for &addr in &result.extra_writebacks {
            accepted = accepted.max(self.push_writeback(j, addr, bytes, t));
        }
        self.scratch.pop_suppress();
        self.scratch.record(Cause::BufferFull, accepted - t);
        accepted
    }
}

/// Builds a simulator, runs `records`, and returns the result.
///
/// # Errors
///
/// Returns a [`SimConfigError`] if the configuration is invalid.
pub fn simulate<I>(config: HierarchyConfig, records: I) -> Result<SimResult, SimConfigError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut sim = HierarchySim::new(config)?;
    sim.run(records);
    Ok(sim.result())
}

/// Like [`simulate`], but discards the first `warmup` records from the
/// statistics (they still warm the caches), mirroring the paper's
/// cold-start removal.
///
/// # Errors
///
/// Returns a [`SimConfigError`] if the configuration is invalid.
pub fn simulate_with_warmup<I>(
    config: HierarchyConfig,
    records: I,
    warmup: usize,
) -> Result<SimResult, SimConfigError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut sim = HierarchySim::new(config)?;
    let mut iter = records.into_iter();
    for rec in iter.by_ref().take(warmup) {
        sim.step(rec);
    }
    sim.reset_measurement();
    for rec in iter {
        sim.step(rec);
    }
    Ok(sim.result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuConfig, LevelConfig, MemoryConfig};
    use crate::machine::{base_machine, single_level, BaseMachine};
    use mlc_cache::{ByteSize, CacheConfig};
    use mlc_obs::EventTracer;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn small_cache(bytes: u64, block: u64) -> CacheConfig {
        CacheConfig::builder()
            .total(ByteSize::new(bytes))
            .block_bytes(block)
            .build()
            .unwrap()
    }

    fn preset_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips1.config(seed))
            .expect("valid preset")
            .generate_records(n)
    }

    /// Base machine, cold ifetch missing both levels: 1 cycle L1 tag
    /// check, 3 cycles L2 tag check, then (3 addr + 18 read + 6 data)
    /// memory fetch, totalling 31 cycles — the paper's 270 ns memory
    /// component plus the two tag checks.
    #[test]
    fn cold_full_miss_costs_31_cycles() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        assert_eq!(sim.now(), 31);
        let r = sim.result();
        assert_eq!(r.read_stall_cycles, 30);
        assert_eq!(r.instructions, 1);
        assert_eq!(r.memory.reads, 1);
    }

    /// The paper's nominal L1-miss/L2-hit penalty: one L2 cycle (3 CPU
    /// cycles) on top of the 1-cycle L1 access.
    #[test]
    fn l1_miss_l2_hit_costs_4_cycles() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        // A and B alias in the 2 KB I-cache (2048 apart) but land in
        // different sets of the 512 KB L2.
        sim.step(TraceRecord::ifetch(0x0)); // cold, 31
        sim.step(TraceRecord::ifetch(0x800)); // cold, evicts A from L1
        let before = sim.now();
        sim.step(TraceRecord::ifetch(0x0)); // L1 miss, L2 hit
        assert_eq!(sim.now() - before, 4);
    }

    #[test]
    fn warm_hits_cost_one_cycle_each() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        let before = sim.now();
        for _ in 0..10 {
            sim.step(TraceRecord::ifetch(0x4));
        }
        assert_eq!(sim.now() - before, 10);
    }

    /// Write hits take two cycles (§2), so a hit store's cycle stretches
    /// to 2 cycles and contributes 1 write-stall cycle.
    #[test]
    fn write_hit_takes_two_cycles() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0)); // warm I
        sim.step(TraceRecord::write(0x5000)); // warm D (cold write miss)
        let before = sim.now();
        let stall_before = sim.result().write_stall_cycles;
        sim.step(TraceRecord::ifetch(0x0)); // hit
        sim.step(TraceRecord::write(0x5000)); // hit, same cycle
        assert_eq!(sim.now() - before, 2);
        assert_eq!(sim.result().write_stall_cycles - stall_before, 1);
        assert_eq!(sim.result().stores, 2);
    }

    /// Ifetch and data access issue in the same cycle on the split L1; a
    /// load hit adds no time to a cycle whose ifetch also hit.
    #[test]
    fn parallel_ifetch_and_load_hit_is_one_cycle() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        sim.step(TraceRecord::read(0x5000));
        let before = sim.now();
        sim.step(TraceRecord::ifetch(0x0));
        sim.step(TraceRecord::read(0x5000));
        assert_eq!(sim.now() - before, 1);
    }

    #[test]
    fn single_level_machine_cold_miss() {
        // 64 KB unified, 32 B blocks, 2-cycle access; backplane at the
        // level's own rate (2 cycles/beat): 1×tag-check… here read_cycles
        // = 2, so: 2 + (2 addr + 18 read + 2×2 data) = 26.
        let config = single_level(small_cache(64 * 1024, 32), 2, 10.0, 1.0);
        let mut sim = HierarchySim::new(config).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        assert_eq!(sim.now(), 26);
    }

    #[test]
    fn memory_refresh_gap_penalises_back_to_back_misses() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0)); // memory read ends at 25
        let before = sim.now();
        // Next miss immediately: its memory op must respect the 12-cycle
        // gap, so it costs more than the nominal 31.
        sim.step(TraceRecord::ifetch(0x10000));
        assert!(sim.now() - before == 31, "gap already elapsed: 31 nominal");
        let before = sim.now();
        sim.step(TraceRecord::ifetch(0x20000));
        let cost = sim.now() - before;
        assert!((31..=43).contains(&cost), "cost {cost}");
    }

    #[test]
    fn victim_buffer_avoids_downstream_fetches() {
        // Single-level DM cache with a victim buffer: a ping-pong pair
        // that would thrash direct-mapped runs mostly out of the buffer.
        let plain = single_level(small_cache(64, 16), 1, 10.0, 1.0);
        let with_victim = single_level(
            CacheConfig::builder()
                .total(ByteSize::new(64))
                .block_bytes(16)
                .victim_entries(2)
                .build()
                .unwrap(),
            1,
            10.0,
            1.0,
        );
        let trace: Vec<TraceRecord> = (0..200)
            .map(|i| TraceRecord::read(if i % 2 == 0 { 0x0 } else { 0x40 }))
            .collect();
        let a = simulate(plain, trace.iter().copied()).unwrap();
        let b = simulate(with_victim, trace.iter().copied()).unwrap();
        assert_eq!(a.memory.reads, 200, "plain DM thrashes to memory");
        assert_eq!(b.memory.reads, 2, "victim buffer absorbs the ping-pong");
        assert!(b.total_cycles < a.total_cycles / 3);
        assert_eq!(b.levels[0].cache.victim_hits, 198);
    }

    #[test]
    fn traffic_accounting_matches_block_sizes() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0)); // cold: L1 pulls 16B, L2 pulls 32B
        let r = sim.result();
        assert_eq!(r.levels[0].fetched_bytes, 16);
        assert_eq!(r.levels[1].fetched_bytes, 32);
        assert_eq!(r.levels[0].writeback_bytes, 0);
        sim.step(TraceRecord::ifetch(0x4)); // hit: no new traffic
        let r = sim.result();
        assert_eq!(r.levels[0].fetched_bytes, 16);
        // A dirty eviction adds writeback traffic of one L1 block.
        sim.step(TraceRecord::write(0x1_0000));
        sim.step(TraceRecord::write(0x1_0800)); // evicts dirty 0x10000
        let r = sim.result();
        assert_eq!(r.levels[0].writeback_bytes, 16);
        assert!(r.levels[0].traffic_bytes() >= r.levels[0].fetched_bytes);
    }

    #[test]
    fn sub_block_fetch_moves_less_data() {
        // Single-level 4KB cache, 32B blocks. Whole-block fills move 32B
        // (2 beats on a 16B bus); with 2 sub-blocks only 16B (1 beat).
        let whole = single_level(small_cache(4096, 32), 1, 10.0, 1.0);
        let sub_cache = CacheConfig::builder()
            .total(ByteSize::new(4096))
            .block_bytes(32)
            .sub_blocks(2)
            .build()
            .unwrap();
        let sub = single_level(sub_cache, 1, 10.0, 1.0);
        let mut sim_whole = HierarchySim::new(whole).unwrap();
        let mut sim_sub = HierarchySim::new(sub).unwrap();
        sim_whole.step(TraceRecord::ifetch(0x40));
        sim_sub.step(TraceRecord::ifetch(0x40));
        // 1 (tag) + 1 (addr) + 18 (read) + beats: 2 for 32B, 1 for 16B.
        assert_eq!(sim_whole.now(), 22);
        assert_eq!(sim_sub.now(), 21);
        // The second sector is a fresh (sub-block) miss for the sectored
        // cache but a hit for the whole-block cache.
        let t = sim_whole.now();
        sim_whole.step(TraceRecord::ifetch(0x50));
        assert_eq!(sim_whole.now() - t, 1);
        let t = sim_sub.now();
        sim_sub.step(TraceRecord::ifetch(0x50));
        assert!(sim_sub.now() - t > 1, "sector miss must refetch");
    }

    #[test]
    fn read_after_write_hazard_drains_buffer_first() {
        // Single-level 64 B direct-mapped cache: 0x0 and 0x40 conflict.
        let config = single_level(small_cache(64, 16), 1, 10.0, 1.0);
        let mut sim = HierarchySim::new(config).unwrap();
        sim.step(TraceRecord::write(0x0)); // dirty 0x0
        sim.step(TraceRecord::write(0x40)); // evicts dirty 0x0 into buffer
        let before = sim.result();
        assert_eq!(before.memory.writes, 0, "victim still buffered");
        // Reading 0x0 must push the buffered victim to memory before the
        // fetch — otherwise the fetch would observe stale data.
        sim.step(TraceRecord::read(0x0));
        let after = sim.result();
        assert_eq!(after.memory.writes, 1, "hazard forced the drain");
        assert_eq!(after.levels[0].write_buffer.drained, 1);
    }

    #[test]
    fn dirty_eviction_reaches_memory_only_after_flush() {
        // Single-level 64 B cache, 16 B blocks, direct-mapped: 0x0 and
        // 0x40 conflict.
        let config = single_level(small_cache(64, 16), 1, 10.0, 1.0);
        let mut sim = HierarchySim::new(config).unwrap();
        sim.step(TraceRecord::write(0x0)); // miss, fill, dirty
        sim.step(TraceRecord::write(0x40)); // miss, evict dirty 0x0
        let r = sim.result();
        assert_eq!(r.levels[0].cache.writebacks, 1);
        sim.flush_all();
        let r = sim.result();
        // 0x0 (buffered victim) + 0x40 (flushed dirty line).
        assert_eq!(r.memory.writes, 2);
    }

    #[test]
    fn full_write_buffer_forces_stalls() {
        // A write-through cache emits one buffer entry per store hit;
        // with slow memory writes the 2-entry buffer must fill and force
        // synchronous drains.
        let wt = CacheConfig::builder()
            .total(ByteSize::new(4096))
            .block_bytes(16)
            .write_policy(mlc_cache::WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut config = single_level(wt, 1, 10.0, 1.0);
        config.levels[0].write_buffer_entries = 2;
        config.memory.write_ns = 10_000.0;
        let mut sim = HierarchySim::new(config).unwrap();
        for _ in 0..40 {
            sim.step(TraceRecord::write(0x0));
        }
        let r = sim.result();
        assert!(
            r.levels[0].write_buffer.full_events > 0,
            "expected forced drains: {:?}",
            r.levels[0].write_buffer
        );
        // Forced drains stall the CPU for the 1000-cycle memory write.
        assert!(r.write_stall_cycles > 1000);
    }

    #[test]
    fn buffered_writes_drain_in_idle_windows() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        // Dirty a D-block, evict it, then generate unrelated L1 misses so
        // the L1→L2 buffer gets an idle L2 window to drain into.
        sim.step(TraceRecord::write(0x0));
        sim.step(TraceRecord::write(0x800)); // evicts dirty 0x0 into buffer
        for i in 0..50u64 {
            sim.step(TraceRecord::ifetch(0x10000 + i * 0x800));
        }
        let r = sim.result();
        assert!(
            r.levels[0].write_buffer.drained > 0,
            "lazy drain should have retired the victim: {:?}",
            r.levels[0].write_buffer
        );
    }

    #[test]
    fn functional_behaviour_is_independent_of_cycle_times() {
        let trace = preset_trace(30_000, 11);
        let fast = simulate(
            BaseMachine::new().l2_cycles(1).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        let slow = simulate(
            BaseMachine::new().l2_cycles(10).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        for (a, b) in fast.levels.iter().zip(slow.levels.iter()) {
            assert_eq!(a.cache.read_misses(), b.cache.read_misses());
            assert_eq!(a.cache.write_misses(), b.cache.write_misses());
        }
        assert!(slow.total_cycles > fast.total_cycles);
    }

    #[test]
    fn slower_memory_never_speeds_execution() {
        let trace = preset_trace(30_000, 13);
        let normal = simulate(base_machine(), trace.iter().copied()).unwrap();
        let slow = simulate(
            BaseMachine::new().memory_scale(2.0).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        assert!(slow.total_cycles > normal.total_cycles);
    }

    #[test]
    fn deeper_hierarchy_runs_and_chains_references() {
        let l3 = CacheConfig::builder()
            .total(ByteSize::mib(2))
            .block_bytes(32)
            .build()
            .unwrap();
        let mut config = base_machine();
        config
            .levels
            .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));
        let trace = preset_trace(30_000, 17);
        let r = simulate(config, trace).unwrap();
        assert_eq!(r.levels.len(), 3);
        // Demand reads reaching L3 are exactly L2's read misses
        // (no prefetch, fetch size = block size).
        assert_eq!(
            r.levels[2].cache.read_references(),
            r.levels[1].cache.read_misses()
        );
        assert_eq!(
            r.levels[1].cache.read_references(),
            r.levels[0].cache.read_misses()
        );
    }

    #[test]
    fn warmup_discards_cold_start() {
        let trace = preset_trace(40_000, 19);
        let cold = simulate(base_machine(), trace.iter().copied()).unwrap();
        let warm = simulate_with_warmup(base_machine(), trace.iter().copied(), 20_000).unwrap();
        assert!(warm.instructions < cold.instructions);
        let cold_ratio = cold.global_read_miss_ratio(1).unwrap();
        let warm_ratio = warm.global_read_miss_ratio(1).unwrap();
        assert!(
            warm_ratio <= cold_ratio,
            "warm {warm_ratio} vs cold {cold_ratio}"
        );
    }

    #[test]
    fn local_miss_ratio_at_least_global() {
        let trace = preset_trace(50_000, 23);
        let r = simulate(base_machine(), trace).unwrap();
        for idx in 0..r.levels.len() {
            let local = r.local_read_miss_ratio(idx).unwrap();
            let global = r.global_read_miss_ratio(idx).unwrap();
            assert!(
                local >= global - 1e-12,
                "level {idx}: local {local} < global {global}"
            );
        }
        // L1 local == L1 global: every CPU read reaches L1.
        let l1_local = r.local_read_miss_ratio(0).unwrap();
        let l1_global = r.global_read_miss_ratio(0).unwrap();
        assert!((l1_local - l1_global).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_trace_same_cycles() {
        let trace = preset_trace(20_000, 29);
        let a = simulate(base_machine(), trace.iter().copied()).unwrap();
        let b = simulate(base_machine(), trace.iter().copied()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn data_only_trace_opens_cycles() {
        let config = single_level(small_cache(4096, 16), 1, 10.0, 1.0);
        let mut sim = HierarchySim::new(config).unwrap();
        sim.step(TraceRecord::read(0x0));
        sim.step(TraceRecord::read(0x0));
        sim.step(TraceRecord::read(0x0));
        let r = sim.result();
        assert_eq!(r.loads, 3);
        assert_eq!(r.instructions, 0);
        assert!(r.total_cycles >= 3);
    }

    #[test]
    fn cpi_reflects_hierarchy_quality() {
        let trace = preset_trace(60_000, 31);
        let good = simulate(base_machine(), trace.iter().copied()).unwrap();
        let bad = simulate(
            BaseMachine::new()
                .l2_total(ByteSize::kib(8))
                .l2_cycles(10)
                .build()
                .unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        assert!(bad.cpi().unwrap() > good.cpi().unwrap());
    }

    #[test]
    fn rejects_invalid_config() {
        let mut config = base_machine();
        config.levels[0].read_cycles = 0;
        assert!(HierarchySim::new(config).is_err());
    }

    /// The cold 31-cycle miss decomposes exactly as Equation 1 reads it:
    /// 1 execute cycle (the L1 access), 3 cycles of L2 tag check, 27 of
    /// memory service (3 addr + 18 read + 6 data).
    #[test]
    fn ledger_attributes_cold_miss_terms() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        let ledger = sim.ledger();
        assert_eq!(ledger.execute, 1);
        assert_eq!(ledger.read_miss, vec![0, 3, 27]);
        assert_eq!(ledger.write_buffer_full, 0);
        assert_eq!(ledger.writeback, 0);
        assert_eq!(ledger.refresh_wait, 0);
        assert_eq!(ledger.total(), sim.result().total_cycles);
    }

    #[test]
    fn ledger_warm_hits_are_pure_execute() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        sim.reset_measurement();
        for _ in 0..10 {
            sim.step(TraceRecord::ifetch(0x4));
        }
        let ledger = sim.ledger();
        assert_eq!(ledger.execute, 10);
        assert_eq!(ledger.total(), 10);
        assert_eq!(ledger.read_miss_total(), 0);
    }

    #[test]
    fn ledger_sends_store_cost_to_write_buckets() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        sim.step(TraceRecord::write(0x5000)); // cold write miss
        sim.step(TraceRecord::ifetch(0x0));
        sim.step(TraceRecord::write(0x5000)); // write hit, 2 cycles
        let ledger = sim.ledger();
        let r = sim.result();
        assert_eq!(ledger.total(), r.total_cycles);
        // The only read-side stall is the cold ifetch miss (30 cycles);
        // both stores' service time lands in the write buckets.
        assert_eq!(
            ledger.read_miss_total(),
            30,
            "store-side time must not pollute read-miss buckets: {ledger:?}"
        );
        assert!(ledger.writeback > 30, "write service time: {ledger:?}");
    }

    #[test]
    fn ledger_counts_buffer_full_stalls() {
        let wt = CacheConfig::builder()
            .total(ByteSize::new(4096))
            .block_bytes(16)
            .write_policy(mlc_cache::WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut config = single_level(wt, 1, 10.0, 1.0);
        config.levels[0].write_buffer_entries = 2;
        config.memory.write_ns = 10_000.0;
        let mut sim = HierarchySim::new(config).unwrap();
        for _ in 0..40 {
            sim.step(TraceRecord::write(0x0));
        }
        let ledger = sim.ledger();
        assert_eq!(ledger.total(), sim.result().total_cycles);
        assert!(
            ledger.write_buffer_full > 1000,
            "forced drains on 1000-cycle memory writes: {ledger:?}"
        );
    }

    #[test]
    fn ledger_conserves_across_measurement_reset() {
        let trace = preset_trace(30_000, 37);
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        for rec in &trace[..10_000] {
            sim.step(*rec);
        }
        sim.reset_measurement();
        for rec in &trace[10_000..] {
            sim.step(*rec);
        }
        assert_eq!(sim.ledger().total(), sim.result().total_cycles);
        assert!(sim.ledger().execute > 0);
    }

    #[test]
    fn histograms_record_per_level_miss_latency() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0));
        let hists = sim.histograms();
        // L1 miss latency: detected at cycle 1, block back at 31.
        assert_eq!(hists.read_miss_latency[0].count(), 1);
        assert_eq!(hists.read_miss_latency[0].max(), 30);
        // L2 miss latency: detected at 4, block back at 31.
        assert_eq!(hists.read_miss_latency[1].max(), 27);
        sim.step(TraceRecord::ifetch(0x4)); // hit: no new samples
        assert_eq!(sim.histograms().read_miss_latency[0].count(), 1);
    }

    #[test]
    fn histograms_record_inter_miss_distance() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.step(TraceRecord::ifetch(0x0)); // miss at record 0
        sim.step(TraceRecord::ifetch(0x4)); // hit
        sim.step(TraceRecord::ifetch(0x8)); // hit
        sim.step(TraceRecord::ifetch(0x800)); // miss at record 3
        let h = &sim.histograms().inter_miss_distance;
        assert_eq!(h.count(), 1, "first miss has no predecessor");
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn tracer_samples_and_reports_serviced_depth() {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.attach_tracer(EventTracer::new(2));
        sim.step(TraceRecord::ifetch(0x0)); // sampled: cold, to memory
        sim.step(TraceRecord::ifetch(0x4)); // not sampled
        sim.step(TraceRecord::ifetch(0x8)); // sampled: L1 hit
        let tracer = sim.take_tracer().unwrap();
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].index, 0);
        assert_eq!(events[0].serviced, 2, "cold miss reaches main memory");
        assert_eq!(events[0].cycles, 31);
        assert_eq!(events[0].stall_cycles, 30);
        assert_eq!(events[1].index, 2);
        assert_eq!(events[1].serviced, 0, "warm hit serviced by L1");
        assert_eq!(events[1].stall_cycles, 0);
        assert!(sim.take_tracer().is_none(), "tracer was detached");
    }

    #[test]
    fn write_through_l1_pushes_stores_downstream() {
        let wt = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .write_policy(mlc_cache::WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let config = HierarchyConfig {
            cpu: CpuConfig::default(),
            levels: vec![
                LevelConfig::new("L1", LevelCacheConfig::Unified(wt), 1),
                LevelConfig::new(
                    "L2",
                    LevelCacheConfig::Unified(small_cache(64 * 1024, 32)),
                    3,
                ),
            ],
            memory: MemoryConfig::default(),
        };
        let mut sim = HierarchySim::new(config).unwrap();
        sim.step(TraceRecord::write(0x0));
        for _ in 0..5 {
            sim.step(TraceRecord::write(0x0)); // hits, each forwarded
        }
        sim.drain_all_buffers();
        let r = sim.result();
        assert_eq!(r.levels[0].write_buffer.enqueued, 6);
        assert_eq!(r.levels[0].write_buffer.drained, 6);
        assert_eq!(r.levels[0].cache.writebacks, 0, "WT lines are never dirty");
    }
}
