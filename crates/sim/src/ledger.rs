//! Cycle attribution: every cycle of `total_cycles` lands in exactly one
//! bucket.
//!
//! The paper's Equation 1 *decomposes* execution time — CPU execute
//! cycles, per-level read-miss stalls, write stalls — but the simulator
//! historically only reported aggregate stall counters, so the
//! decomposition could never be audited term by term. The
//! [`CycleLedger`] closes that gap with a conservation guarantee:
//!
//! > `execute + Σ read_miss[j] + write_buffer_full + writeback +
//! > refresh_wait == SimResult::total_cycles`, exactly, on every run.
//!
//! # How conservation is achieved
//!
//! Attribution is settled once per trace record. While
//! `HierarchySim::step` walks the hierarchy it records the *components*
//! of the access's critical path into a [`LedgerScratch`] — tag checks
//! and hit times per level, memory service, refresh-gap waits,
//! buffer-full drains — in temporal order. When the record completes,
//! the simulator knows precisely how many cycles the clock advanced
//! (`delta`), how many of those were the base execute cycle (`exec`, 0
//! or 1), and therefore the exact stall (`delta - exec`). The scratch
//! components are then reconciled against that stall:
//!
//! * components may over-cover the stall (the access's early cycles
//!   overlap a cycle that was already open — e.g. a load sharing its
//!   instruction's cycle): the excess is dropped from the *front*,
//!   because the overlap is always at the start of the access;
//! * components may under-cover it (rare bookkeeping corners): the
//!   remainder falls into a fallback bucket (level 0 for reads, the
//!   writeback bucket for stores).
//!
//! Either way exactly `stall` ticks are attributed, so the buckets sum
//! to `total_cycles` *by construction* — the `check-invariants` feature
//! re-asserts the identity after every record. Conservation is exact;
//! the split between buckets is faithful to the critical path the
//! simulator actually walked, with the front-drop rule deciding ties.
//!
//! Work off the critical path (lazy buffer drains in idle windows,
//! non-demand sector fills, the interior of a forced drain that is
//! already accounted as one buffer-full lump) is *suppressed*: it can
//! never leak into the requester's attribution.

use mlc_obs::Log2Histogram;

/// What a span of critical-path ticks was spent on, as recorded by the
/// hierarchy walk (pre-reconciliation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cause {
    /// Waiting for / being serviced by cache level `j` (tag check, hit
    /// access, refill beats).
    Level(usize),
    /// Main-memory service: address cycles, the operation itself, data
    /// beats.
    Memory,
    /// A producer stalled on a full write buffer (forced synchronous
    /// drain).
    BufferFull,
    /// Draining buffered writes on the critical path (read-after-write
    /// hazards).
    Writeback,
    /// Waiting for main memory to become available: busy serialisation
    /// plus the refresh gap (Equation 1's `T-recovery` overlap).
    Refresh,
}

/// Per-record scratch state: the critical-path components of the access
/// in flight, plus the suppression depth for off-critical-path work.
#[derive(Debug, Clone, Default)]
pub(crate) struct LedgerScratch {
    parts: Vec<(Cause, u64)>,
    suppress: u32,
    deepest: u32,
}

impl LedgerScratch {
    /// Clears per-record state. Called at the top of every `step`.
    pub(crate) fn begin(&mut self) {
        self.parts.clear();
        self.deepest = 0;
        debug_assert_eq!(self.suppress, 0, "unbalanced ledger suppression");
    }

    /// Records `ticks` of critical path spent on `cause`, unless inside
    /// a suppressed (off-critical-path) region.
    #[inline]
    pub(crate) fn record(&mut self, cause: Cause, ticks: u64) {
        if self.suppress == 0 && ticks > 0 {
            self.parts.push((cause, ticks));
        }
    }

    /// Notes that the critical path reached hierarchy element `element`
    /// (level index, or the level count for main memory).
    #[inline]
    pub(crate) fn touch(&mut self, element: u32) {
        if self.suppress == 0 {
            self.deepest = self.deepest.max(element);
        }
    }

    /// The deepest element the current record's critical path reached.
    pub(crate) fn deepest(&self) -> u32 {
        self.deepest
    }

    /// Enters an off-critical-path region: recording becomes a no-op
    /// until the matching [`LedgerScratch::pop_suppress`].
    #[inline]
    pub(crate) fn push_suppress(&mut self) {
        self.suppress += 1;
    }

    /// Leaves an off-critical-path region.
    #[inline]
    pub(crate) fn pop_suppress(&mut self) {
        debug_assert!(self.suppress > 0, "pop without matching push");
        self.suppress -= 1;
    }

    /// Whether recording is currently suppressed.
    #[inline]
    pub(crate) fn suppressed(&self) -> bool {
        self.suppress > 0
    }
}

/// Exhaustive attribution of simulated cycles, one bucket per cause.
///
/// Obtained from `HierarchySim::ledger()`; covers the measurement
/// window, like `SimResult`. The conservation identity
/// [`CycleLedger::total`]` == SimResult::total_cycles` holds exactly on
/// every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleLedger {
    /// Base execute cycles: one per instruction fetch plus one per data
    /// reference that opened its own cycle (data-only traces).
    pub execute: u64,
    /// Read-stall cycles attributed to each hierarchy element:
    /// `read_miss[j]` for cache level `j` (its tag checks, waits and
    /// refill beats on read critical paths), and one trailing entry —
    /// `read_miss[depth]` — for main-memory service. Length is always
    /// `depth + 1`.
    pub read_miss: Vec<u64>,
    /// Cycles producers spent stalled on full write buffers (forced
    /// synchronous drains).
    pub write_buffer_full: u64,
    /// Write-side stall cycles: store hit/miss service beyond the base
    /// cycle, write-allocate fetches, and read-after-write hazard
    /// drains. Together with `write_buffer_full`, this is the simulated
    /// counterpart of Equation 1's `N_store · z_L1write` term.
    pub writeback: u64,
    /// Cycles critical-path memory requests waited for main memory to
    /// become available (busy serialisation + refresh gap).
    pub refresh_wait: u64,
}

impl CycleLedger {
    /// An empty ledger for a hierarchy of `depth` cache levels.
    pub fn new(depth: usize) -> Self {
        CycleLedger {
            execute: 0,
            read_miss: vec![0; depth + 1],
            write_buffer_full: 0,
            writeback: 0,
            refresh_wait: 0,
        }
    }

    /// Number of cache levels the ledger covers.
    pub fn depth(&self) -> usize {
        self.read_miss.len() - 1
    }

    /// The main-memory read-stall bucket (the last `read_miss` entry).
    pub fn memory_read_miss(&self) -> u64 {
        *self
            .read_miss
            .last()
            .expect("ledger always has a memory bucket")
    }

    /// Sum of all per-level read-miss buckets including main memory.
    pub fn read_miss_total(&self) -> u64 {
        self.read_miss.iter().sum()
    }

    /// Sum of every bucket — equals `SimResult::total_cycles` by the
    /// conservation invariant.
    pub fn total(&self) -> u64 {
        self.execute
            + self.read_miss_total()
            + self.write_buffer_full
            + self.writeback
            + self.refresh_wait
    }

    /// Zeroes every bucket (measurement-window reset).
    pub fn reset(&mut self) {
        self.execute = 0;
        for b in &mut self.read_miss {
            *b = 0;
        }
        self.write_buffer_full = 0;
        self.writeback = 0;
        self.refresh_wait = 0;
    }

    /// The buckets as `(label, cycles)` rows, execute first, using
    /// `level_names` for the per-level read-miss buckets (indices past
    /// the names render as `memory`).
    pub fn rows(&self, level_names: &[&str]) -> Vec<(String, u64)> {
        let mut rows = vec![("execute".to_owned(), self.execute)];
        for (j, &cycles) in self.read_miss.iter().enumerate() {
            let name = level_names
                .get(j)
                .map(|n| format!("read_miss.{n}"))
                .unwrap_or_else(|| "read_miss.memory".to_owned());
            rows.push((name, cycles));
        }
        rows.push(("write_buffer_full".to_owned(), self.write_buffer_full));
        rows.push(("writeback".to_owned(), self.writeback));
        rows.push(("refresh_wait".to_owned(), self.refresh_wait));
        rows
    }

    /// The bucket a reconciled component lands in. Write-path level and
    /// memory time is write cost (Equation 1 folds it into
    /// `z_L1write`), not read-miss stall.
    fn bucket_mut(&mut self, cause: Cause, write_path: bool) -> &mut u64 {
        let depth = self.depth();
        match cause {
            Cause::BufferFull => &mut self.write_buffer_full,
            Cause::Writeback => &mut self.writeback,
            Cause::Refresh => &mut self.refresh_wait,
            Cause::Level(_) | Cause::Memory if write_path => &mut self.writeback,
            Cause::Level(j) => &mut self.read_miss[j.min(depth)],
            Cause::Memory => &mut self.read_miss[depth],
        }
    }

    /// Reconciles one record's scratch components against its measured
    /// `exec`/`stall` split (see the module docs): drops over-coverage
    /// from the front, attributes exactly `stall` ticks, sends any
    /// under-coverage to the fallback bucket.
    pub(crate) fn settle(
        &mut self,
        scratch: &mut LedgerScratch,
        exec: u64,
        stall: u64,
        write_path: bool,
    ) {
        self.execute += exec;
        let sum: u64 = scratch.parts.iter().map(|&(_, t)| t).sum();
        let mut skip = sum.saturating_sub(stall);
        let mut remaining = stall;
        for (cause, ticks) in scratch.parts.drain(..) {
            let dropped = skip.min(ticks);
            skip -= dropped;
            let take = (ticks - dropped).min(remaining);
            if take > 0 {
                *self.bucket_mut(cause, write_path) += take;
            }
            remaining -= take;
        }
        if remaining > 0 {
            let fallback = if write_path {
                Cause::Writeback
            } else {
                Cause::Level(0)
            };
            *self.bucket_mut(fallback, write_path) += remaining;
        }
    }
}

/// Distribution summaries the simulator collects alongside the ledger,
/// in plain simulator-local storage (recording is two array increments —
/// no locks, no allocation; see the `mlc-obs` histogram docs). Exported
/// into a `Metrics` handle only at phase boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimHistograms {
    /// `read_miss_latency[j]`: cycles from a read miss being detected at
    /// level `j` until its block is available there (demand critical
    /// path only; background write-allocate fetches are excluded).
    pub read_miss_latency: Vec<Log2Histogram>,
    /// Queue depth of every write buffer, sampled after each enqueue
    /// (all levels pooled).
    pub write_buffer_occupancy: Log2Histogram,
    /// Trace records between consecutive level-0 demand read misses.
    pub inter_miss_distance: Log2Histogram,
}

impl SimHistograms {
    /// Empty histograms for a hierarchy of `depth` cache levels.
    pub fn new(depth: usize) -> Self {
        SimHistograms {
            read_miss_latency: vec![Log2Histogram::new(); depth],
            write_buffer_occupancy: Log2Histogram::new(),
            inter_miss_distance: Log2Histogram::new(),
        }
    }

    /// Clears every histogram (measurement-window reset).
    pub fn reset(&mut self) {
        for h in &mut self.read_miss_latency {
            *h = Log2Histogram::new();
        }
        self.write_buffer_occupancy = Log2Histogram::new();
        self.inter_miss_distance = Log2Histogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle_one(parts: &[(Cause, u64)], exec: u64, stall: u64, write_path: bool) -> CycleLedger {
        let mut ledger = CycleLedger::new(2);
        let mut scratch = LedgerScratch::default();
        scratch.begin();
        for &(c, t) in parts {
            scratch.record(c, t);
        }
        ledger.settle(&mut scratch, exec, stall, write_path);
        ledger
    }

    #[test]
    fn exact_coverage_attributes_in_order() {
        // 1 exec + components [L0:1, L1:3, mem:27] covering a 31-cycle
        // access: 1 tick of over-coverage (the base cycle) drops off the
        // front.
        let l = settle_one(
            &[
                (Cause::Level(0), 1),
                (Cause::Level(1), 3),
                (Cause::Memory, 27),
            ],
            1,
            30,
            false,
        );
        assert_eq!(l.execute, 1);
        assert_eq!(l.read_miss, vec![0, 3, 27]);
        assert_eq!(l.total(), 31);
    }

    #[test]
    fn over_coverage_drops_from_the_front() {
        // An access folded into an already-open cycle: most of its
        // latency overlaps and only the tail is new stall.
        let l = settle_one(&[(Cause::Level(0), 2), (Cause::Memory, 10)], 0, 4, false);
        assert_eq!(l.read_miss, vec![0, 0, 4]);
        assert_eq!(l.total(), 4);
    }

    #[test]
    fn under_coverage_falls_back() {
        let reads = settle_one(&[(Cause::Level(1), 2)], 1, 5, false);
        assert_eq!(reads.read_miss, vec![3, 2, 0], "remainder lands at L0");
        assert_eq!(reads.total(), 6);
        let writes = settle_one(&[], 0, 5, true);
        assert_eq!(writes.writeback, 5, "write remainder lands in writeback");
        assert_eq!(writes.total(), 5);
    }

    #[test]
    fn write_path_folds_level_time_into_writeback() {
        let l = settle_one(
            &[
                (Cause::Level(0), 2),
                (Cause::Memory, 20),
                (Cause::Refresh, 3),
            ],
            1,
            24,
            true,
        );
        assert_eq!(l.writeback, 21, "level + memory time on a store");
        assert_eq!(l.refresh_wait, 3);
        assert_eq!(l.read_miss_total(), 0);
        assert_eq!(l.total(), 25);
    }

    #[test]
    fn suppressed_regions_record_nothing() {
        let mut scratch = LedgerScratch::default();
        scratch.begin();
        scratch.push_suppress();
        scratch.record(Cause::Memory, 100);
        scratch.touch(2);
        assert!(scratch.suppressed());
        scratch.pop_suppress();
        scratch.record(Cause::Level(0), 1);
        scratch.touch(1);
        assert_eq!(scratch.deepest(), 1);
        let mut ledger = CycleLedger::new(2);
        ledger.settle(&mut scratch, 0, 1, false);
        assert_eq!(ledger.read_miss, vec![1, 0, 0]);
    }

    #[test]
    fn rows_label_every_bucket() {
        let mut l = CycleLedger::new(2);
        l.execute = 10;
        l.read_miss = vec![1, 2, 3];
        l.refresh_wait = 4;
        let rows = l.rows(&["L1", "L2"]);
        let labels: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            labels,
            [
                "execute",
                "read_miss.L1",
                "read_miss.L2",
                "read_miss.memory",
                "write_buffer_full",
                "writeback",
                "refresh_wait"
            ]
        );
        let total: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(total, l.total());
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut l = CycleLedger::new(1);
        l.execute = 5;
        l.read_miss[1] = 7;
        l.writeback = 3;
        l.reset();
        assert_eq!(l.total(), 0);
        let mut h = SimHistograms::new(1);
        h.write_buffer_occupancy.record(3);
        h.reset();
        assert!(h.write_buffer_occupancy.is_empty());
    }
}
