//! Timing-decoupled sweep simulation: one functional trace pass priced
//! under many cycle-time variants simultaneously.
//!
//! # Why this is possible
//!
//! The hierarchy's *functional* behaviour — which references hit, which
//! blocks are fetched, evicted or written back — does not depend on the
//! levels' cycle times (see the `functional_behaviour_is_independent_of_
//! cycle_times` test in `hierarchy.rs`): cache contents are determined by
//! the reference order, which the in-order CPU model fixes. Only the
//! *prices* change. So a grid sweep over L2 cycle times can run the cache
//! model once and carry a vector of clocks — one **lane** per cycle-time
//! variant — through the exact timing arithmetic of
//! [`HierarchySim`](crate::HierarchySim).
//!
//! # What each lane carries
//!
//! Per lane: the simulated clock, per-level busy times, per-level
//! read/write/bus cycle counts, write-buffer entry ready-times, a main
//! memory (its busy state and refresh-gap waits are timing-dependent),
//! and the stall counters. Shared across lanes: the caches themselves,
//! the write-buffer *contents* (addresses and occupancy), and every
//! hit/miss/traffic counter.
//!
//! # Lane-width dispatch
//!
//! The per-lane arithmetic runs over fixed-width `[u64; W]` vectors so
//! the compiler unrolls (and auto-vectorizes) every loop with no runtime
//! lane bound. Rather than one compile-time width, the simulator is
//! monomorphized at the widths in [`LANE_WIDTHS`] (2 up to 24 lanes) and
//! [`TimingSweepSim::new`] picks the smallest width that fits the
//! request: a 2-config sweep pays for 2 lanes, not 24, and a 24-point
//! cycle ladder finishes in one functional pass instead of four. Wider
//! vectors amortize the shared functional pass (cache model, trace
//! decode) over more grid points, which is where the one-pass engine''s
//! throughput comes from.
//!
//! # The one approximation
//!
//! Lazy write-buffer drains ("retire queued writes that could have
//! started in the level's idle window") are a *timing-dependent decision*
//! that feeds back into cache state: draining performs a downstream
//! write access. To keep one shared functional state, lane 0 — the
//! **decision lane** — makes all drain decisions; other lanes retire the
//! same entries at their own times. Lane 0 therefore reproduces
//! [`HierarchySim`](crate::HierarchySim) cycle-exactly *by construction*;
//! other lanes agree except where their native drain window would have
//! differed from lane 0's, which the cross-check machinery in `mlc-core`
//! (and the `--engine exhaustive` escape hatch in `mlc-sweep`) exists to
//! bound.

use std::collections::VecDeque;

use mlc_cache::{CacheUnit, Fill, FillReason};
use mlc_mem::{BufferedWrite, MainMemory, MemOpKind, MemoryTiming, WriteBuffer};
use mlc_trace::{AccessKind, Address, TraceRecord};

use crate::clock::Clock;
use crate::config::{HierarchyConfig, LevelCacheConfig, SimConfigError};
use crate::metrics::{LevelMetrics, SimResult};

/// The largest number of timing variants one [`TimingSweepSim`] carries.
/// [`simulate_timing_sweep`] transparently chunks longer lists.
pub const MAX_LANES: usize = 24;

/// The monomorphized lane widths behind [`TimingSweepSim`]. A request
/// for `n` lanes dispatches to the smallest width `>= n`; tail lanes are
/// computed alongside (their timing parameters are padded with lane 0's
/// values at construction) so the per-lane loops keep a compile-time
/// bound.
pub const LANE_WIDTHS: [usize; 7] = [2, 4, 6, 8, 12, 16, 24];

#[inline(always)]
fn splat<const W: usize>(x: u64) -> [u64; W] {
    [x; W]
}

#[inline(always)]
fn vmax<const W: usize>(a: [u64; W], b: [u64; W]) -> [u64; W] {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o = (*o).max(b);
    }
    out
}

#[inline(always)]
fn vadd<const W: usize>(a: [u64; W], b: [u64; W]) -> [u64; W] {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o += b;
    }
    out
}

#[inline(always)]
fn vadd1<const W: usize>(a: [u64; W], x: u64) -> [u64; W] {
    let mut out = a;
    for o in out.iter_mut() {
        *o += x;
    }
    out
}

/// Accumulates `max(0, a - b)` per lane into `acc`.
#[inline(always)]
fn vstall<const W: usize>(acc: &mut [u64; W], a: [u64; W], b: [u64; W]) {
    for ((acc, a), b) in acc.iter_mut().zip(a).zip(b) {
        *acc += a.saturating_sub(b);
    }
}

#[inline(always)]
fn side(kind: AccessKind) -> usize {
    usize::from(kind.is_data())
}

/// Per-lane bus timing: fixed width, per-lane cycle time.
#[derive(Debug, Clone, Copy)]
struct SweepBus<const W: usize> {
    width_bytes: u64,
    cycle: [u64; W],
}

impl<const W: usize> SweepBus<W> {
    #[inline(always)]
    fn address_ticks(&self) -> [u64; W] {
        self.cycle
    }

    #[inline(always)]
    fn data_ticks(&self, bytes: u64) -> [u64; W] {
        let beats = bytes.div_ceil(self.width_bytes);
        let mut out = self.cycle;
        for o in out.iter_mut() {
            *o *= beats;
        }
        out
    }

    #[inline(always)]
    fn extra_beat_ticks(&self, bytes: u64) -> [u64; W] {
        let beats = bytes.div_ceil(self.width_bytes).saturating_sub(1);
        let mut out = self.cycle;
        for o in out.iter_mut() {
            *o *= beats;
        }
        out
    }

    #[inline(always)]
    fn transfer_ticks(&self, bytes: u64) -> [u64; W] {
        vadd(self.address_ticks(), self.data_ticks(bytes))
    }
}

/// One hierarchy level: shared cache and buffer contents, per-lane timing.
#[derive(Debug, Clone)]
struct SweepLevel<const W: usize> {
    name: String,
    cache: CacheUnit,
    read_cycles: [u64; W],
    write_cycles: [u64; W],
    refill_bus: SweepBus<W>,
    /// Shared buffer contents; each entry's `ready_at` is lane 0's.
    out_buffer: WriteBuffer,
    /// Per-entry per-lane ready times, parallel to `out_buffer`.
    ready: VecDeque<[u64; W]>,
    split: bool,
    busy: [[u64; W]; 2],
    fetched_bytes: u64,
    writeback_bytes: u64,
}

impl<const W: usize> SweepLevel<W> {
    #[inline(always)]
    fn busy_for(&self, kind: AccessKind) -> [u64; W] {
        if self.split {
            self.busy[side(kind)]
        } else {
            self.busy[0]
        }
    }

    #[inline(always)]
    fn set_busy(&mut self, kind: AccessKind, t: [u64; W]) {
        if self.split {
            let s = side(kind);
            self.busy[s] = vmax(self.busy[s], t);
        } else {
            self.busy[0] = vmax(self.busy[0], t);
            self.busy[1] = self.busy[0];
        }
    }

    /// [`Self::set_busy`] for callers that already know `t` dominates the
    /// port's current busy time — every hit fast path computes
    /// `t = max(busy, ..) + latency` — so the max can be a plain store.
    #[inline(always)]
    fn store_busy(&mut self, kind: AccessKind, t: [u64; W]) {
        debug_assert!(
            self.busy_for(kind).iter().zip(&t).all(|(b, t)| t >= b),
            "store_busy requires t >= current busy"
        );
        if self.split {
            self.busy[side(kind)] = t;
        } else {
            self.busy[0] = t;
            self.busy[1] = t;
        }
    }

    #[inline(always)]
    fn busy_any(&self) -> [u64; W] {
        vmax(self.busy[0], self.busy[1])
    }
}

/// The CPU-side per-record state: clocks, issue tracking and stall
/// accumulators. Kept in a separate `Copy` struct so the bulk-run loop
/// can hold a local copy — the per-record vector arithmetic then chains
/// through registers instead of bouncing every intermediate off the
/// simulator struct in memory.
#[derive(Debug, Clone, Copy)]
struct CpuState<const W: usize> {
    now: [u64; W],
    cycle_issue: [u64; W],
    cycle_has_data: bool,
    instructions: u64,
    loads: u64,
    stores: u64,
    read_stall: [u64; W],
    write_stall: [u64; W],
    /// Level-0 port busy times ([instruction, data] when split). Only
    /// `cpu_access` reads or writes level-0 busy state, so it lives here
    /// with the clocks instead of in `SweepLevel` — touched every record,
    /// it must stay in registers with the rest of the chain.
    l1_busy: [[u64; W]; 2],
}

impl<const W: usize> CpuState<W> {
    #[inline(always)]
    fn l1_busy_for(&self, split: bool, kind: AccessKind) -> [u64; W] {
        if split {
            self.l1_busy[side(kind)]
        } else {
            self.l1_busy[0]
        }
    }

    #[inline(always)]
    fn l1_set_busy(&mut self, split: bool, kind: AccessKind, t: [u64; W]) {
        if split {
            let s = side(kind);
            self.l1_busy[s] = vmax(self.l1_busy[s], t);
        } else {
            self.l1_busy[0] = vmax(self.l1_busy[0], t);
            self.l1_busy[1] = self.l1_busy[0];
        }
    }

    /// [`Self::l1_set_busy`] when `t` already dominates the port's busy
    /// time (the hit fast path computes `t = max(busy, ..) + latency`).
    #[inline(always)]
    fn l1_store_busy(&mut self, split: bool, kind: AccessKind, t: [u64; W]) {
        debug_assert!(
            self.l1_busy_for(split, kind)
                .iter()
                .zip(&t)
                .all(|(b, t)| t >= b),
            "l1_store_busy requires t >= current busy"
        );
        if split {
            self.l1_busy[side(kind)] = t;
        } else {
            self.l1_busy[0] = t;
            self.l1_busy[1] = t;
        }
    }
}

/// The width-`W` monomorphization behind [`TimingSweepSim`]: the timing
/// model of [`HierarchySim`](crate::HierarchySim) evaluated under up to
/// `W` timing variants in a single trace pass.
#[derive(Debug, Clone)]
struct SweepSimW<const W: usize> {
    lanes: usize,
    clocks: Vec<Clock>,
    levels: Vec<SweepLevel<W>>,
    /// One main memory per lane (index < `lanes`): busy state and
    /// refresh-gap waits are timing-dependent.
    memories: Vec<MainMemory>,
    /// Whether level 0 has split instruction/data ports (cached off
    /// `levels[0]` for the per-record busy bookkeeping in `CpuState`).
    l1_split: bool,
    cpu: CpuState<W>,
    measure_start: [u64; W],
}

impl<const W: usize> SweepSimW<W> {
    /// Builds a width-`W` sweep from one configuration per lane.
    /// `configs.len()` must already be validated to lie in `1..=W`.
    fn new(configs: &[HierarchyConfig]) -> Result<Self, SimConfigError> {
        debug_assert!(
            !configs.is_empty() && configs.len() <= W,
            "dispatch guarantees 1..={W} configs"
        );
        for config in configs {
            config.validate()?;
        }
        let first = &configs[0];
        for (l, config) in configs.iter().enumerate().skip(1) {
            if config.levels.len() != first.levels.len() {
                return Err(SimConfigError::new(format!(
                    "lane {l} has {} levels, lane 0 has {}",
                    config.levels.len(),
                    first.levels.len()
                )));
            }
            for (i, (a, b)) in config.levels.iter().zip(first.levels.iter()).enumerate() {
                if a.cache != b.cache {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: cache organisation differs from lane 0 \
                         (a timing sweep varies only timing)"
                    )));
                }
                if a.write_buffer_entries != b.write_buffer_entries {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: write_buffer_entries differs from lane 0"
                    )));
                }
                if a.refill_bus_bytes != b.refill_bus_bytes {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: refill_bus_bytes differs from lane 0"
                    )));
                }
            }
        }

        let lanes = configs.len();
        let clocks: Vec<Clock> = configs.iter().map(|c| Clock::new(c.cpu.cycle_ns)).collect();
        // A per-lane timing parameter, padded with lane 0's value.
        let per_lane = |f: &dyn Fn(usize) -> u64| -> [u64; W] {
            let mut out = splat(f(0));
            for (l, o) in out.iter_mut().enumerate().take(lanes) {
                *o = f(l);
            }
            out
        };

        let mut levels = Vec::with_capacity(first.levels.len());
        for (i, lc) in first.levels.iter().enumerate() {
            let cache = match lc.cache {
                LevelCacheConfig::Unified(c) => CacheUnit::unified(c),
                LevelCacheConfig::Split { icache, dcache } => CacheUnit::split(icache, dcache),
            };
            let split = matches!(cache, CacheUnit::Split(_));
            levels.push(SweepLevel {
                name: lc.name.clone(),
                cache,
                read_cycles: per_lane(&|l| configs[l].levels[i].read_cycles),
                write_cycles: per_lane(&|l| configs[l].levels[i].write_cycles),
                refill_bus: SweepBus {
                    width_bytes: lc.refill_bus_bytes,
                    cycle: per_lane(&|l| configs[l].refill_bus_cycles(i)),
                },
                out_buffer: WriteBuffer::new(lc.write_buffer_entries),
                ready: VecDeque::new(),
                split,
                busy: [splat(0); 2],
                fetched_bytes: 0,
                writeback_bytes: 0,
            });
        }
        let memories: Vec<MainMemory> = configs
            .iter()
            .zip(&clocks)
            .map(|(c, clock)| {
                MainMemory::new(MemoryTiming::new(
                    clock.ns_to_cycles(c.memory.read_ns).max(1),
                    clock.ns_to_cycles(c.memory.write_ns).max(1),
                    clock.ns_to_cycles(c.memory.gap_ns),
                ))
            })
            .collect();
        let l1_split = levels[0].split;
        Ok(SweepSimW {
            lanes,
            clocks,
            levels,
            memories,
            l1_split,
            cpu: CpuState {
                now: splat(0),
                cycle_issue: splat(0),
                cycle_has_data: true, // force a new cycle for a leading data ref
                instructions: 0,
                loads: 0,
                stores: 0,
                read_stall: splat(0),
                write_stall: splat(0),
                l1_busy: [splat(0); 2],
            },
            measure_start: splat(0),
        })
    }

    /// Processes a single trace record against an explicit CPU state
    /// (mirrors `HierarchySim::step`). `st` is `self.cpu`, passed as a
    /// separate local by the bulk loop so it stays register-resident
    /// across records.
    #[inline(always)]
    fn step_on(&mut self, st: &mut CpuState<W>, rec: TraceRecord) {
        match rec.kind {
            AccessKind::InstructionFetch => {
                let t = st.now;
                let done = self.cpu_access(rec, t, st);
                st.instructions += 1;
                let end = vmax(done, vadd1(t, 1));
                vstall(&mut st.read_stall, end, vadd1(t, 1));
                st.now = end;
                st.cycle_issue = t;
                st.cycle_has_data = false;
            }
            AccessKind::Read | AccessKind::Write => {
                let t = if st.cycle_has_data {
                    st.cycle_issue = st.now;
                    st.now = vadd1(st.now, 1);
                    st.cycle_issue
                } else {
                    st.cycle_issue
                };
                st.cycle_has_data = true;
                let done = self.cpu_access(rec, t, st);
                if rec.kind == AccessKind::Write {
                    st.stores += 1;
                    vstall(&mut st.write_stall, done, vadd1(t, 1));
                } else {
                    st.loads += 1;
                    // The issue bound `max(now, t + 1)` is always `now`
                    // here: on the new-cycle path `now` was just set to
                    // `t + 1`, and on the shared-cycle path (entered only
                    // after an instruction fetch) `now = max(done, t' + 1)
                    // >= cycle_issue + 1 = t + 1`.
                    debug_assert_eq!(vmax(st.now, vadd1(t, 1)), st.now);
                    vstall(&mut st.read_stall, done, st.now);
                }
                st.now = vmax(st.now, done);
            }
        }
    }

    /// Processes a single trace record (mirrors `HierarchySim::step`).
    fn step(&mut self, rec: TraceRecord) {
        let mut st = self.cpu;
        self.step_on(&mut st, rec);
        self.cpu = st;
    }

    /// Runs a batch of records with the CPU state held in a local.
    fn run_batch(&mut self, records: &[TraceRecord]) {
        let mut st = self.cpu;
        for rec in records {
            self.step_on(&mut st, *rec);
        }
        self.cpu = st;
    }

    /// Mirrors `HierarchySim::reset_measurement`.
    fn reset_measurement(&mut self) {
        self.measure_start = self.cpu.now;
        self.cpu.instructions = 0;
        self.cpu.loads = 0;
        self.cpu.stores = 0;
        self.cpu.read_stall = splat(0);
        self.cpu.write_stall = splat(0);
        for level in &mut self.levels {
            level.cache.reset_stats();
            level.out_buffer.reset_stats();
            level.fetched_bytes = 0;
            level.writeback_bytes = 0;
        }
        for memory in &mut self.memories {
            memory.reset_stats();
        }
    }

    /// One [`SimResult`] per lane in construction order.
    fn results(&self) -> Vec<SimResult> {
        (0..self.lanes)
            .map(|l| SimResult {
                total_cycles: self.cpu.now[l] - self.measure_start[l],
                instructions: self.cpu.instructions,
                cpu_reads: self.cpu.instructions + self.cpu.loads,
                loads: self.cpu.loads,
                stores: self.cpu.stores,
                read_stall_cycles: self.cpu.read_stall[l],
                write_stall_cycles: self.cpu.write_stall[l],
                cpu_cycle_ns: self.clocks[l].cycle_ns(),
                levels: self
                    .levels
                    .iter()
                    .map(|lvl| LevelMetrics {
                        name: lvl.name.clone(),
                        cache: lvl.cache.stats(),
                        write_buffer: lvl.out_buffer.stats(),
                        fetched_bytes: lvl.fetched_bytes,
                        writeback_bytes: lvl.writeback_bytes,
                    })
                    .collect(),
                memory: self.memories[l].stats(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // CPU-side access (level 0) — mirrors HierarchySim::cpu_access
    // ------------------------------------------------------------------

    fn cpu_access(&mut self, rec: TraceRecord, t: [u64; W], st: &mut CpuState<W>) -> [u64; W] {
        let kind = rec.kind;
        let split = self.l1_split;
        // Hit fast path: identical outcome to the full access below, but
        // skips building an `AccessResult` for the common case.
        if let Some(write_through) = self.levels[0].cache.access_hit(rec.addr, kind) {
            let start = vmax(t, st.l1_busy_for(split, kind));
            let dur = if kind.is_write() {
                self.levels[0].write_cycles
            } else {
                self.levels[0].read_cycles
            };
            let mut done = vadd(start, dur);
            st.l1_store_busy(split, kind, done);
            if write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = vmax(done, accepted);
            }
            return done;
        }

        let result = self.levels[0].cache.access(rec.addr, kind);
        let start = vmax(t, st.l1_busy_for(split, kind));
        debug_assert!(!result.hit, "access_hit covers every plain hit");

        let detected = vadd(start, self.levels[0].read_cycles);

        if result.victim_hit {
            let mut done = vadd(detected, self.levels[0].read_cycles);
            if kind.is_write() && !result.write_through {
                done = vadd(done, self.levels[0].write_cycles);
            }
            st.l1_set_busy(split, kind, done);
            done = vmax(done, self.push_extra_writebacks(0, &result, done));
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = vmax(done, accepted);
            }
            return done;
        }

        if result.fills.is_empty() {
            // Invariant: a miss with no fills can only be a no-allocate
            // write-through; reads always allocate and therefore fill.
            debug_assert!(result.write_through, "read misses always fill");
            st.l1_set_busy(split, kind, detected);
            let accepted = self.push_writeback(0, rec.addr, 4, detected);
            return vmax(detected, accepted);
        }

        let need = self.levels[0].cache.block_bytes_for(kind);
        let (mut completion, chain) = self.service_fills(0, &result.fills, kind, need, detected);
        completion = vmax(
            completion,
            self.push_extra_writebacks(0, &result, completion),
        );
        st.l1_set_busy(split, kind, chain);

        if kind.is_write() {
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, completion);
                completion = vmax(completion, accepted);
            } else {
                completion = vadd(completion, self.levels[0].write_cycles);
                st.l1_set_busy(split, kind, completion);
            }
        }
        completion
    }

    fn service_fills(
        &mut self,
        idx: usize,
        fills: &[Fill],
        kind: AccessKind,
        block_bytes: u64,
        start: [u64; W],
    ) -> ([u64; W], [u64; W]) {
        let mut completion = start;
        let mut chain = start;
        let ordered = fills
            .iter()
            .filter(|f| f.reason == FillReason::Demand)
            .chain(fills.iter().filter(|f| f.reason != FillReason::Demand));
        for fill in ordered {
            self.levels[idx].fetched_bytes += fill.bytes;
            let done = self.fetch_block(idx + 1, fill.block, kind, fill.bytes, chain);
            chain = done;
            let mut fin = done;
            if let Some(wb) = fill.writeback {
                let accepted = self.push_writeback(idx, wb, block_bytes, done);
                fin = vmax(fin, accepted);
                chain = vmax(chain, accepted);
            }
            if fill.reason == FillReason::Demand {
                completion = fin;
            }
        }
        (completion, chain)
    }

    // ------------------------------------------------------------------
    // Downstream read path — mirrors HierarchySim
    // ------------------------------------------------------------------

    fn fetch_block(
        &mut self,
        idx: usize,
        addr: Address,
        kind: AccessKind,
        need_bytes: u64,
        t: [u64; W],
    ) -> [u64; W] {
        if idx == self.levels.len() {
            return self.memory_read(addr, need_bytes, t);
        }
        self.drain_ready_before(idx - 1, t);
        let t = self.resolve_raw_hazard(idx - 1, addr, need_bytes, t);

        let upstream_bus = self.levels[idx - 1].refill_bus;
        // Hit fast path; a downstream read hit never forwards store data,
        // so the write-through flag is irrelevant here (as in the full
        // path, which ignores it on hits).
        if self.levels[idx].cache.access_hit(addr, kind).is_some() {
            let start = vmax(t, self.levels[idx].busy_for(kind));
            let done = vadd(start, self.levels[idx].read_cycles);
            self.levels[idx].store_busy(kind, done);
            return vadd(done, upstream_bus.extra_beat_ticks(need_bytes));
        }

        let result = self.levels[idx].cache.access(addr, kind);
        let start = vmax(t, self.levels[idx].busy_for(kind));
        debug_assert!(!result.hit, "access_hit covers every plain hit");

        let detected = vadd(start, self.levels[idx].read_cycles);

        if result.victim_hit {
            let mut done = vadd(detected, self.levels[idx].read_cycles);
            self.levels[idx].set_busy(kind, done);
            done = vmax(done, self.push_extra_writebacks(idx, &result, done));
            return vadd(done, upstream_bus.extra_beat_ticks(need_bytes));
        }

        let my_block = self.levels[idx].cache.block_bytes_for(kind);
        let (completion, chain) = self.service_fills(idx, &result.fills, kind, my_block, detected);
        let completion = vmax(
            completion,
            self.push_extra_writebacks(idx, &result, completion),
        );
        self.levels[idx].set_busy(kind, chain);
        vadd(completion, upstream_bus.extra_beat_ticks(need_bytes))
    }

    fn memory_read(&mut self, addr: Address, need_bytes: u64, t: [u64; W]) -> [u64; W] {
        let lanes = self.lanes;
        let deepest = self.levels.len() - 1;
        self.drain_ready_before(deepest, t);
        let t = self.resolve_raw_hazard(deepest, addr, need_bytes, t);
        let bus = self.levels[deepest].refill_bus;
        let arrival = vadd(t, bus.address_ticks());
        let data = bus.data_ticks(need_bytes);
        let mut out = splat(0);
        for l in 0..lanes {
            let op = self.memories[l].schedule(arrival[l], MemOpKind::Read);
            out[l] = op.end + data[l];
        }
        out
    }

    fn resolve_raw_hazard(&mut self, j: usize, addr: Address, bytes: u64, t: [u64; W]) -> [u64; W] {
        let mut cleared = t;
        while self.levels[j].out_buffer.overlaps(addr, bytes) {
            let earliest = self.levels[j].ready.front().copied().unwrap_or(cleared);
            cleared = vmax(cleared, self.drain_one(j, vmax(cleared, earliest)));
        }
        cleared
    }

    // ------------------------------------------------------------------
    // Write path (buffers and drains) — mirrors HierarchySim
    // ------------------------------------------------------------------

    fn push_writeback(&mut self, j: usize, addr: Address, bytes: u64, t: [u64; W]) -> [u64; W] {
        let entry = BufferedWrite {
            addr,
            bytes,
            ready_at: t[0],
        };
        self.levels[j].writeback_bytes += bytes;
        if self.levels[j].out_buffer.try_push(entry) {
            self.levels[j].ready.push_back(t);
            return t;
        }
        // Full: the producer waits for the oldest entry to retire.
        let accepted = vmax(t, self.drain_one(j, t));
        let pushed = self.levels[j].out_buffer.try_push(BufferedWrite {
            addr,
            bytes,
            ready_at: accepted[0],
        });
        // Invariant: drain_one just popped an entry, so the bounded
        // buffer has at least one free slot for this push.
        debug_assert!(pushed, "buffer must have space after forced drain");
        self.levels[j].ready.push_back(accepted);
        accepted
    }

    /// Retires queued writes that could have started strictly before `t`
    /// in the downstream's idle window. The *decision* — which entries
    /// count as "could have started" — is lane 0's; see the module docs.
    fn drain_ready_before(&mut self, j: usize, t: [u64; W]) {
        loop {
            let Some(ready) = self.levels[j].ready.front().copied() else {
                return;
            };
            let downstream_free = if j + 1 == self.levels.len() {
                self.memory_busy_until()
            } else {
                self.levels[j + 1].busy_any()
            };
            let would_start = vmax(ready, downstream_free);
            if would_start[0] >= t[0] {
                return;
            }
            self.drain_one(j, would_start);
        }
    }

    fn drain_one(&mut self, j: usize, earliest: [u64; W]) -> [u64; W] {
        let Some(entry) = self.levels[j].out_buffer.pop() else {
            return earliest;
        };
        let ready = self.levels[j]
            .ready
            // Invariant: every out_buffer push is paired with a ready
            // push, so a successful pop guarantees a ready entry.
            .pop_front()
            .expect("ready times parallel the buffer");
        let start = vmax(earliest, ready);
        self.write_downstream(j, entry.addr, entry.bytes, start)
    }

    fn write_downstream(
        &mut self,
        j: usize,
        addr: Address,
        bytes: u64,
        start: [u64; W],
    ) -> [u64; W] {
        let l = self.lanes;
        let bus = self.levels[j].refill_bus;
        let target = j + 1;
        if target == self.levels.len() {
            let arrival = vadd(start, bus.transfer_ticks(bytes));
            let mut out = splat(0);
            for lane in 0..l {
                let op = self.memories[lane].schedule(arrival[lane], MemOpKind::Write);
                out[lane] = op.end;
            }
            return out;
        }

        // Hit fast path: a write hit has no fills and no victim-buffer
        // ejections, so only the write-through forwarding remains.
        if let Some(write_through) = self.levels[target]
            .cache
            .access_hit(addr, AccessKind::Write)
        {
            let arrival = vadd(start, bus.extra_beat_ticks(bytes));
            let wstart = vmax(arrival, self.levels[target].busy_for(AccessKind::Write));
            let mut done = vadd(wstart, self.levels[target].write_cycles);
            if write_through {
                let accepted = self.push_writeback(target, addr, bytes, done);
                done = vmax(done, accepted);
            }
            self.levels[target].store_busy(AccessKind::Write, done);
            return done;
        }

        let result = self.levels[target].cache.access(addr, AccessKind::Write);
        let arrival = vadd(start, bus.extra_beat_ticks(bytes));
        let wstart = vmax(arrival, self.levels[target].busy_for(AccessKind::Write));
        debug_assert!(!result.hit, "access_hit covers every plain hit");

        let mut done = if result.victim_hit {
            vadd(
                vadd(wstart, self.levels[target].read_cycles),
                self.levels[target].write_cycles,
            )
        } else if result.fills.is_empty() {
            let checked = vadd(wstart, self.levels[target].read_cycles);
            let accepted = self.push_writeback(target, addr, bytes, checked);
            vmax(checked, accepted)
        } else {
            let my_block = self.levels[target].cache.block_bytes_for(AccessKind::Write);
            let detected = vadd(wstart, self.levels[target].read_cycles);
            let (_, chain) =
                self.service_fills(target, &result.fills, AccessKind::Write, my_block, detected);
            vadd(chain, self.levels[target].write_cycles)
        };

        if result.write_through {
            let accepted = self.push_writeback(target, addr, bytes, done);
            done = vmax(done, accepted);
        }
        done = vmax(done, self.push_extra_writebacks(target, &result, done));
        self.levels[target].set_busy(AccessKind::Write, done);
        done
    }

    fn push_extra_writebacks(
        &mut self,
        j: usize,
        result: &mlc_cache::AccessResult,
        t: [u64; W],
    ) -> [u64; W] {
        let mut accepted = t;
        if result.extra_writebacks.is_empty() {
            return accepted;
        }
        let bytes = match &self.levels[j].cache {
            CacheUnit::Unified(c) => c.geometry().block_bytes(),
            CacheUnit::Split(s) => s.dcache().geometry().block_bytes(),
        };
        for &addr in &result.extra_writebacks {
            accepted = vmax(accepted, self.push_writeback(j, addr, bytes, t));
        }
        accepted
    }

    fn memory_busy_until(&self) -> [u64; W] {
        let mut out = splat(0);
        for (l, o) in out.iter_mut().enumerate().take(self.lanes) {
            *o = self.memories[l].busy_until();
        }
        out
    }
}

/// A multi-lane hierarchy simulator: the timing model of
/// [`HierarchySim`](crate::HierarchySim) evaluated under up to
/// [`MAX_LANES`] timing variants in a single trace pass.
///
/// All variants must be *functionally identical* — same cache
/// organisations, policies and buffer capacities — and may differ in any
/// timing parameter: level cycle times, bus cycle times, CPU cycle time,
/// memory speeds.
///
/// The lane width is runtime-dispatched: construction monomorphizes to
/// the smallest width in [`LANE_WIDTHS`] that fits the request, so small
/// sweeps pay narrow-vector arithmetic and wide cycle ladders still run
/// in one functional pass.
///
/// # Examples
///
/// Price the base machine at three L2 cycle times in one pass:
///
/// ```
/// use mlc_sim::machine::BaseMachine;
/// use mlc_sim::sweep::simulate_timing_sweep;
/// use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
///
/// let configs: Vec<_> = [1u64, 3, 5]
///     .iter()
///     .map(|&c| BaseMachine::new().l2_cycles(c).build().unwrap())
///     .collect();
/// let mut gen = MultiProgramGenerator::new(Preset::Mips1.config(7))
///     .expect("preset is valid");
/// let trace = gen.generate_records(20_000);
/// let results = simulate_timing_sweep(&configs, &trace, 5_000)?;
/// assert_eq!(results.len(), 3);
/// assert!(results[0].total_cycles <= results[2].total_cycles);
/// # Ok::<(), mlc_sim::SimConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimingSweepSim {
    inner: SweepDispatch,
}

/// The monomorphized widths behind [`TimingSweepSim`], one variant per
/// entry of [`LANE_WIDTHS`]. The wide variants make the enum big, but
/// exactly one lives per sweep pass and it is never moved mid-run, so
/// the by-value layout costs nothing and keeps the dispatch free of
/// indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum SweepDispatch {
    W2(SweepSimW<2>),
    W4(SweepSimW<4>),
    W6(SweepSimW<6>),
    W8(SweepSimW<8>),
    W12(SweepSimW<12>),
    W16(SweepSimW<16>),
    W24(SweepSimW<24>),
}

macro_rules! each_width {
    ($self:expr, $sim:ident => $body:expr) => {
        match &$self.inner {
            SweepDispatch::W2($sim) => $body,
            SweepDispatch::W4($sim) => $body,
            SweepDispatch::W6($sim) => $body,
            SweepDispatch::W8($sim) => $body,
            SweepDispatch::W12($sim) => $body,
            SweepDispatch::W16($sim) => $body,
            SweepDispatch::W24($sim) => $body,
        }
    };
}

macro_rules! each_width_mut {
    ($self:expr, $sim:ident => $body:expr) => {
        match &mut $self.inner {
            SweepDispatch::W2($sim) => $body,
            SweepDispatch::W4($sim) => $body,
            SweepDispatch::W6($sim) => $body,
            SweepDispatch::W8($sim) => $body,
            SweepDispatch::W12($sim) => $body,
            SweepDispatch::W16($sim) => $body,
            SweepDispatch::W24($sim) => $body,
        }
    };
}

impl TimingSweepSim {
    /// Builds a sweep simulator from one configuration per lane,
    /// dispatching to the smallest monomorphized width that fits.
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] if the list is empty or longer than
    /// [`MAX_LANES`], any configuration is invalid, or the configurations
    /// are not functionally identical (cache organisations, buffer
    /// capacities and bus widths must match; only timing may differ).
    pub fn new(configs: &[HierarchyConfig]) -> Result<Self, SimConfigError> {
        if configs.is_empty() {
            return Err(SimConfigError::new("timing sweep needs at least one lane"));
        }
        if configs.len() > MAX_LANES {
            return Err(SimConfigError::new(format!(
                "timing sweep supports at most {MAX_LANES} lanes, got {}",
                configs.len()
            )));
        }
        let inner = match configs.len() {
            1..=2 => SweepDispatch::W2(SweepSimW::new(configs)?),
            3..=4 => SweepDispatch::W4(SweepSimW::new(configs)?),
            5..=6 => SweepDispatch::W6(SweepSimW::new(configs)?),
            7..=8 => SweepDispatch::W8(SweepSimW::new(configs)?),
            9..=12 => SweepDispatch::W12(SweepSimW::new(configs)?),
            13..=16 => SweepDispatch::W16(SweepSimW::new(configs)?),
            _ => SweepDispatch::W24(SweepSimW::new(configs)?),
        };
        Ok(TimingSweepSim { inner })
    }

    /// Number of timing lanes (the number of configurations supplied).
    pub fn lanes(&self) -> usize {
        each_width!(self, sim => sim.lanes)
    }

    /// The monomorphized vector width carrying those lanes (an entry of
    /// [`LANE_WIDTHS`], `>= self.lanes()`).
    pub fn width(&self) -> usize {
        match &self.inner {
            SweepDispatch::W2(_) => 2,
            SweepDispatch::W4(_) => 4,
            SweepDispatch::W6(_) => 6,
            SweepDispatch::W8(_) => 8,
            SweepDispatch::W12(_) => 12,
            SweepDispatch::W16(_) => 16,
            SweepDispatch::W24(_) => 24,
        }
    }

    /// Runs every record of `records` through the hierarchy.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        each_width_mut!(self, sim => {
            let mut st = sim.cpu;
            for rec in records {
                sim.step_on(&mut st, rec);
            }
            sim.cpu = st;
        })
    }

    /// Processes a single trace record (mirrors `HierarchySim::step`).
    pub fn step(&mut self, rec: TraceRecord) {
        each_width_mut!(self, sim => sim.step(rec))
    }

    /// Runs a slice of records through the hierarchy, dispatching to the
    /// monomorphized width once for the whole slice rather than once per
    /// record — the hot path for bulk simulation.
    pub fn run_slice(&mut self, records: &[TraceRecord]) {
        each_width_mut!(self, sim => sim.run_batch(records))
    }

    /// Resets all statistics and starts a fresh measurement window at the
    /// current simulated time in every lane (mirrors
    /// `HierarchySim::reset_measurement`).
    pub fn reset_measurement(&mut self) {
        each_width_mut!(self, sim => sim.reset_measurement())
    }

    /// Snapshot of the current measurement window, one [`SimResult`] per
    /// lane in construction order. Functional counters (hits, misses,
    /// traffic, buffer flow) are identical across lanes by construction;
    /// cycle totals, stall counters and memory waits are per-lane.
    pub fn results(&self) -> Vec<SimResult> {
        each_width!(self, sim => sim.results())
    }
}

/// Runs `records` through a timing sweep over `configs`, discarding the
/// first `warmup` records from the statistics, and returns one
/// [`SimResult`] per configuration (in order). Lists longer than
/// [`MAX_LANES`] are transparently split into several passes.
///
/// # Errors
///
/// Returns a [`SimConfigError`] under the same conditions as
/// [`TimingSweepSim::new`].
pub fn simulate_timing_sweep(
    configs: &[HierarchyConfig],
    records: &[TraceRecord],
    warmup: usize,
) -> Result<Vec<SimResult>, SimConfigError> {
    let mut out = Vec::with_capacity(configs.len());
    for chunk in configs.chunks(MAX_LANES.max(1)) {
        let mut sim = TimingSweepSim::new(chunk)?;
        let warm = warmup.min(records.len());
        sim.run_slice(&records[..warm]);
        sim.reset_measurement();
        sim.run_slice(&records[warm..]);
        out.extend(sim.results());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::simulate_with_warmup;
    use crate::machine::BaseMachine;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn preset_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips1.config(seed))
            .expect("valid preset")
            .generate_records(n)
    }

    fn base_at(cycles: u64) -> HierarchyConfig {
        BaseMachine::new().l2_cycles(cycles).build().unwrap()
    }

    /// Lane 0 reproduces the scalar simulator cycle-exactly by
    /// construction: same decisions, same order, same arithmetic.
    #[test]
    fn lane0_matches_hierarchy_sim_exactly() {
        let trace = preset_trace(40_000, 3);
        for cycles in [1u64, 3, 7] {
            let solo =
                simulate_with_warmup(base_at(cycles), trace.iter().copied(), 10_000).unwrap();
            let swept =
                simulate_timing_sweep(&[base_at(cycles), base_at(1)], &trace, 10_000).unwrap();
            assert_eq!(swept[0], solo, "decision lane at l2_cycles={cycles}");
        }
    }

    /// All lanes of a sweep agree with per-lane scalar runs on the base
    /// machine's L2 cycle ladder.
    #[test]
    fn lanes_match_scalar_runs() {
        let trace = preset_trace(40_000, 5);
        let ladder = [1u64, 2, 3, 5, 8];
        let configs: Vec<_> = ladder.iter().map(|&c| base_at(c)).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 10_000).unwrap();
        for (&cycles, result) in ladder.iter().zip(&swept) {
            let solo =
                simulate_with_warmup(base_at(cycles), trace.iter().copied(), 10_000).unwrap();
            assert_eq!(result, &solo, "lane at l2_cycles={cycles}");
        }
    }

    /// Every monomorphized width produces the same per-lane results as
    /// scalar runs: the padding lanes never leak into real lanes.
    #[test]
    fn every_width_matches_scalar_runs() {
        let trace = preset_trace(20_000, 7);
        // Lane counts hitting each width: 1→W2, 3→W4, 5→W6, 7→W8,
        // 9→W12, 13→W16, 17→W24.
        for lanes in [1usize, 3, 5, 7, 9, 12, 13, 17] {
            let ladder: Vec<u64> = (1..=lanes as u64).collect();
            let configs: Vec<_> = ladder.iter().map(|&c| base_at(c)).collect();
            let sim = TimingSweepSim::new(&configs).unwrap();
            assert!(sim.width() >= lanes, "width {} < {lanes}", sim.width());
            assert_eq!(sim.lanes(), lanes);
            let swept = simulate_timing_sweep(&configs, &trace, 5_000).unwrap();
            for (&cycles, result) in ladder.iter().zip(&swept) {
                let solo =
                    simulate_with_warmup(base_at(cycles), trace.iter().copied(), 5_000).unwrap();
                assert_eq!(result, &solo, "{lanes}-lane sweep at l2_cycles={cycles}");
            }
        }
    }

    /// Dispatch picks the smallest monomorphized width that fits.
    #[test]
    fn dispatch_picks_smallest_width() {
        for (lanes, want) in [
            (1, 2),
            (2, 2),
            (3, 4),
            (4, 4),
            (5, 6),
            (6, 6),
            (7, 8),
            (8, 8),
        ]
        .into_iter()
        .chain((9..=12).map(|l| (l, 12)))
        .chain((13..=16).map(|l| (l, 16)))
        .chain((17..=24).map(|l| (l, 24)))
        {
            let configs: Vec<_> = (1..=lanes as u64).map(base_at).collect();
            let sim = TimingSweepSim::new(&configs).unwrap();
            assert_eq!(sim.width(), want, "{lanes} lanes");
            assert!(LANE_WIDTHS.contains(&sim.width()));
        }
    }

    #[test]
    fn totals_monotone_in_cycle_time() {
        let trace = preset_trace(30_000, 9);
        let configs: Vec<_> = (1..=6).map(base_at).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 5_000).unwrap();
        for pair in swept.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
        }
    }

    #[test]
    fn functional_counters_shared_across_lanes() {
        let trace = preset_trace(30_000, 11);
        let swept = simulate_timing_sweep(&[base_at(1), base_at(9)], &trace, 5_000).unwrap();
        let (a, b) = (&swept[0], &swept[1]);
        assert_eq!(a.instructions, b.instructions);
        for (la, lb) in a.levels.iter().zip(b.levels.iter()) {
            assert_eq!(la.cache, lb.cache);
            assert_eq!(la.write_buffer, lb.write_buffer);
            assert_eq!(la.fetched_bytes, lb.fetched_bytes);
            assert_eq!(la.writeback_bytes, lb.writeback_bytes);
        }
        assert_eq!(a.memory.reads, b.memory.reads);
        assert_eq!(a.memory.writes, b.memory.writes);
    }

    #[test]
    fn chunking_handles_more_than_max_lanes() {
        let trace = preset_trace(5_000, 13);
        let configs: Vec<_> = (1..=(MAX_LANES as u64 + 3)).map(base_at).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 1_000).unwrap();
        assert_eq!(swept.len(), MAX_LANES + 3);
        for pair in swept.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
        }
    }

    #[test]
    fn rejects_functionally_different_lanes() {
        let a = base_at(3);
        let b = BaseMachine::new()
            .l2_total(mlc_cache::ByteSize::kib(256))
            .build()
            .unwrap();
        let err = TimingSweepSim::new(&[a, b]).unwrap_err();
        assert!(err.to_string().contains("cache organisation"));
    }

    #[test]
    fn rejects_empty_and_oversized() {
        assert!(TimingSweepSim::new(&[]).is_err());
        let configs: Vec<_> = (0..MAX_LANES as u64 + 1).map(|_| base_at(3)).collect();
        assert!(TimingSweepSim::new(&configs).is_err());
    }
}
