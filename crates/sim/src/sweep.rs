//! Timing-decoupled sweep simulation: one functional trace pass priced
//! under many cycle-time variants simultaneously.
//!
//! # Why this is possible
//!
//! The hierarchy's *functional* behaviour — which references hit, which
//! blocks are fetched, evicted or written back — does not depend on the
//! levels' cycle times (see the `functional_behaviour_is_independent_of_
//! cycle_times` test in `hierarchy.rs`): cache contents are determined by
//! the reference order, which the in-order CPU model fixes. Only the
//! *prices* change. So a grid sweep over L2 cycle times can run the cache
//! model once and carry a vector of clocks — one **lane** per cycle-time
//! variant — through the exact timing arithmetic of
//! [`HierarchySim`](crate::HierarchySim).
//!
//! # What each lane carries
//!
//! Per lane: the simulated clock, per-level busy times, per-level
//! read/write/bus cycle counts, write-buffer entry ready-times, a main
//! memory (its busy state and refresh-gap waits are timing-dependent),
//! and the stall counters. Shared across lanes: the caches themselves,
//! the write-buffer *contents* (addresses and occupancy), and every
//! hit/miss/traffic counter.
//!
//! # The one approximation
//!
//! Lazy write-buffer drains ("retire queued writes that could have
//! started in the level's idle window") are a *timing-dependent decision*
//! that feeds back into cache state: draining performs a downstream
//! write access. To keep one shared functional state, lane 0 — the
//! **decision lane** — makes all drain decisions; other lanes retire the
//! same entries at their own times. Lane 0 therefore reproduces
//! [`HierarchySim`](crate::HierarchySim) cycle-exactly *by construction*;
//! other lanes agree except where their native drain window would have
//! differed from lane 0's, which the cross-check machinery in `mlc-core`
//! (and the `--engine exhaustive` escape hatch in `mlc-sweep`) exists to
//! bound.

use std::collections::VecDeque;

use mlc_cache::{CacheUnit, Fill, FillReason};
use mlc_mem::{BufferedWrite, MainMemory, MemOpKind, MemoryTiming, WriteBuffer};
use mlc_trace::{AccessKind, Address, TraceRecord};

use crate::clock::Clock;
use crate::config::{HierarchyConfig, LevelCacheConfig, SimConfigError};
use crate::metrics::{LevelMetrics, SimResult};

/// The largest number of timing variants one [`TimingSweepSim`] carries.
/// [`simulate_timing_sweep`] transparently chunks longer lists.
///
/// Sized to the paper's canonical cycle-time sweep (L2 cycle times
/// 1–6): the vector arithmetic runs at the fixed width with no runtime
/// lane bound, so the compiler unrolls it, and the common grid wastes no
/// lanes. Widening this trades per-pass cost for fewer passes on longer
/// sweeps.
pub const MAX_LANES: usize = 6;

/// A fixed-width vector of per-lane times. Only the first `lanes`
/// entries are ever *read*; tail lanes are computed alongside (their
/// timing parameters are padded with lane 0's values at construction)
/// so the per-lane loops have a compile-time bound.
type Times = [u64; MAX_LANES];

#[inline]
fn splat(x: u64) -> Times {
    [x; MAX_LANES]
}

#[inline]
fn vmax(a: Times, b: Times) -> Times {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o = (*o).max(b);
    }
    out
}

#[inline]
fn vadd(a: Times, b: Times) -> Times {
    let mut out = a;
    for (o, b) in out.iter_mut().zip(b) {
        *o += b;
    }
    out
}

#[inline]
fn vadd1(a: Times, x: u64) -> Times {
    let mut out = a;
    for o in out.iter_mut() {
        *o += x;
    }
    out
}

/// Accumulates `max(0, a - b)` per lane into `acc`.
#[inline]
fn vstall(acc: &mut Times, a: Times, b: Times) {
    for ((acc, a), b) in acc.iter_mut().zip(a).zip(b) {
        *acc += a.saturating_sub(b);
    }
}

#[inline]
fn side(kind: AccessKind) -> usize {
    usize::from(kind.is_data())
}

/// Per-lane bus timing: fixed width, per-lane cycle time.
#[derive(Debug, Clone, Copy)]
struct SweepBus {
    width_bytes: u64,
    cycle: Times,
}

impl SweepBus {
    fn address_ticks(&self) -> Times {
        self.cycle
    }

    fn data_ticks(&self, bytes: u64) -> Times {
        let beats = bytes.div_ceil(self.width_bytes);
        let mut out = self.cycle;
        for o in out.iter_mut() {
            *o *= beats;
        }
        out
    }

    fn extra_beat_ticks(&self, bytes: u64) -> Times {
        let beats = bytes.div_ceil(self.width_bytes).saturating_sub(1);
        let mut out = self.cycle;
        for o in out.iter_mut() {
            *o *= beats;
        }
        out
    }

    fn transfer_ticks(&self, bytes: u64) -> Times {
        vadd(self.address_ticks(), self.data_ticks(bytes))
    }
}

/// One hierarchy level: shared cache and buffer contents, per-lane timing.
#[derive(Debug, Clone)]
struct SweepLevel {
    name: String,
    cache: CacheUnit,
    read_cycles: Times,
    write_cycles: Times,
    refill_bus: SweepBus,
    /// Shared buffer contents; each entry's `ready_at` is lane 0's.
    out_buffer: WriteBuffer,
    /// Per-entry per-lane ready times, parallel to `out_buffer`.
    ready: VecDeque<Times>,
    split: bool,
    busy: [Times; 2],
    fetched_bytes: u64,
    writeback_bytes: u64,
}

impl SweepLevel {
    #[inline]
    fn busy_for(&self, kind: AccessKind) -> Times {
        if self.split {
            self.busy[side(kind)]
        } else {
            self.busy[0]
        }
    }

    #[inline]
    fn set_busy(&mut self, kind: AccessKind, t: Times) {
        if self.split {
            let s = side(kind);
            self.busy[s] = vmax(self.busy[s], t);
        } else {
            self.busy[0] = vmax(self.busy[0], t);
            self.busy[1] = self.busy[0];
        }
    }

    #[inline]
    fn busy_any(&self) -> Times {
        vmax(self.busy[0], self.busy[1])
    }
}

/// A multi-lane hierarchy simulator: the timing model of
/// [`HierarchySim`](crate::HierarchySim) evaluated under up to
/// [`MAX_LANES`] timing variants in a single trace pass.
///
/// All variants must be *functionally identical* — same cache
/// organisations, policies and buffer capacities — and may differ in any
/// timing parameter: level cycle times, bus cycle times, CPU cycle time,
/// memory speeds.
///
/// # Examples
///
/// Price the base machine at three L2 cycle times in one pass:
///
/// ```
/// use mlc_sim::machine::BaseMachine;
/// use mlc_sim::sweep::simulate_timing_sweep;
/// use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
///
/// let configs: Vec<_> = [1u64, 3, 5]
///     .iter()
///     .map(|&c| BaseMachine::new().l2_cycles(c).build().unwrap())
///     .collect();
/// let mut gen = MultiProgramGenerator::new(Preset::Mips1.config(7))
///     .expect("preset is valid");
/// let trace = gen.generate_records(20_000);
/// let results = simulate_timing_sweep(&configs, &trace, 5_000)?;
/// assert_eq!(results.len(), 3);
/// assert!(results[0].total_cycles <= results[2].total_cycles);
/// # Ok::<(), mlc_sim::SimConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimingSweepSim {
    lanes: usize,
    clocks: Vec<Clock>,
    levels: Vec<SweepLevel>,
    /// One main memory per lane (index < `lanes`): busy state and
    /// refresh-gap waits are timing-dependent.
    memories: Vec<MainMemory>,
    now: Times,
    measure_start: Times,
    cycle_issue: Times,
    cycle_has_data: bool,
    instructions: u64,
    loads: u64,
    stores: u64,
    read_stall: Times,
    write_stall: Times,
}

impl TimingSweepSim {
    /// Builds a sweep simulator from one configuration per lane.
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] if the list is empty or longer than
    /// [`MAX_LANES`], any configuration is invalid, or the configurations
    /// are not functionally identical (cache organisations, buffer
    /// capacities and bus widths must match; only timing may differ).
    pub fn new(configs: &[HierarchyConfig]) -> Result<Self, SimConfigError> {
        if configs.is_empty() {
            return Err(SimConfigError::new("timing sweep needs at least one lane"));
        }
        if configs.len() > MAX_LANES {
            return Err(SimConfigError::new(format!(
                "timing sweep supports at most {MAX_LANES} lanes, got {}",
                configs.len()
            )));
        }
        for config in configs {
            config.validate()?;
        }
        let first = &configs[0];
        for (l, config) in configs.iter().enumerate().skip(1) {
            if config.levels.len() != first.levels.len() {
                return Err(SimConfigError::new(format!(
                    "lane {l} has {} levels, lane 0 has {}",
                    config.levels.len(),
                    first.levels.len()
                )));
            }
            for (i, (a, b)) in config.levels.iter().zip(first.levels.iter()).enumerate() {
                if a.cache != b.cache {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: cache organisation differs from lane 0 \
                         (a timing sweep varies only timing)"
                    )));
                }
                if a.write_buffer_entries != b.write_buffer_entries {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: write_buffer_entries differs from lane 0"
                    )));
                }
                if a.refill_bus_bytes != b.refill_bus_bytes {
                    return Err(SimConfigError::new(format!(
                        "lane {l} level {i}: refill_bus_bytes differs from lane 0"
                    )));
                }
            }
        }

        let lanes = configs.len();
        let clocks: Vec<Clock> = configs.iter().map(|c| Clock::new(c.cpu.cycle_ns)).collect();
        // A per-lane timing parameter, padded with lane 0's value.
        let per_lane = |f: &dyn Fn(usize) -> u64| -> Times {
            let mut out = splat(f(0));
            for (l, o) in out.iter_mut().enumerate().take(lanes) {
                *o = f(l);
            }
            out
        };

        let mut levels = Vec::with_capacity(first.levels.len());
        for (i, lc) in first.levels.iter().enumerate() {
            let cache = match lc.cache {
                LevelCacheConfig::Unified(c) => CacheUnit::unified(c),
                LevelCacheConfig::Split { icache, dcache } => CacheUnit::split(icache, dcache),
            };
            let split = matches!(cache, CacheUnit::Split(_));
            levels.push(SweepLevel {
                name: lc.name.clone(),
                cache,
                read_cycles: per_lane(&|l| configs[l].levels[i].read_cycles),
                write_cycles: per_lane(&|l| configs[l].levels[i].write_cycles),
                refill_bus: SweepBus {
                    width_bytes: lc.refill_bus_bytes,
                    cycle: per_lane(&|l| configs[l].refill_bus_cycles(i)),
                },
                out_buffer: WriteBuffer::new(lc.write_buffer_entries),
                ready: VecDeque::new(),
                split,
                busy: [splat(0); 2],
                fetched_bytes: 0,
                writeback_bytes: 0,
            });
        }
        let memories: Vec<MainMemory> = configs
            .iter()
            .zip(&clocks)
            .map(|(c, clock)| {
                MainMemory::new(MemoryTiming::new(
                    clock.ns_to_cycles(c.memory.read_ns).max(1),
                    clock.ns_to_cycles(c.memory.write_ns).max(1),
                    clock.ns_to_cycles(c.memory.gap_ns),
                ))
            })
            .collect();
        Ok(TimingSweepSim {
            lanes,
            clocks,
            levels,
            memories,
            now: splat(0),
            measure_start: splat(0),
            cycle_issue: splat(0),
            cycle_has_data: true, // force a new cycle for a leading data ref
            instructions: 0,
            loads: 0,
            stores: 0,
            read_stall: splat(0),
            write_stall: splat(0),
        })
    }

    /// Number of timing lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every record of `records` through the hierarchy.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        for rec in records {
            self.step(rec);
        }
    }

    /// Processes a single trace record (mirrors `HierarchySim::step`).
    pub fn step(&mut self, rec: TraceRecord) {
        match rec.kind {
            AccessKind::InstructionFetch => {
                let t = self.now;
                let done = self.cpu_access(rec, t);
                self.instructions += 1;
                let end = vmax(done, vadd1(t, 1));
                vstall(&mut self.read_stall, end, vadd1(t, 1));
                self.now = end;
                self.cycle_issue = t;
                self.cycle_has_data = false;
            }
            AccessKind::Read | AccessKind::Write => {
                let t = if self.cycle_has_data {
                    self.cycle_issue = self.now;
                    self.now = vadd1(self.now, 1);
                    self.cycle_issue
                } else {
                    self.cycle_issue
                };
                self.cycle_has_data = true;
                let done = self.cpu_access(rec, t);
                if rec.kind == AccessKind::Write {
                    self.stores += 1;
                    vstall(&mut self.write_stall, done, vadd1(t, 1));
                } else {
                    self.loads += 1;
                    vstall(&mut self.read_stall, done, vmax(self.now, vadd1(t, 1)));
                }
                self.now = vmax(self.now, done);
            }
        }
    }

    /// Resets all statistics and starts a fresh measurement window at the
    /// current simulated time in every lane (mirrors
    /// `HierarchySim::reset_measurement`).
    pub fn reset_measurement(&mut self) {
        self.measure_start = self.now;
        self.instructions = 0;
        self.loads = 0;
        self.stores = 0;
        self.read_stall = splat(0);
        self.write_stall = splat(0);
        for level in &mut self.levels {
            level.cache.reset_stats();
            level.out_buffer.reset_stats();
            level.fetched_bytes = 0;
            level.writeback_bytes = 0;
        }
        for memory in &mut self.memories {
            memory.reset_stats();
        }
    }

    /// Snapshot of the current measurement window, one [`SimResult`] per
    /// lane in construction order. Functional counters (hits, misses,
    /// traffic, buffer flow) are identical across lanes by construction;
    /// cycle totals, stall counters and memory waits are per-lane.
    pub fn results(&self) -> Vec<SimResult> {
        (0..self.lanes)
            .map(|l| SimResult {
                total_cycles: self.now[l] - self.measure_start[l],
                instructions: self.instructions,
                cpu_reads: self.instructions + self.loads,
                loads: self.loads,
                stores: self.stores,
                read_stall_cycles: self.read_stall[l],
                write_stall_cycles: self.write_stall[l],
                cpu_cycle_ns: self.clocks[l].cycle_ns(),
                levels: self
                    .levels
                    .iter()
                    .map(|lvl| LevelMetrics {
                        name: lvl.name.clone(),
                        cache: lvl.cache.stats(),
                        write_buffer: lvl.out_buffer.stats(),
                        fetched_bytes: lvl.fetched_bytes,
                        writeback_bytes: lvl.writeback_bytes,
                    })
                    .collect(),
                memory: self.memories[l].stats(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // CPU-side access (level 0) — mirrors HierarchySim::cpu_access
    // ------------------------------------------------------------------

    fn cpu_access(&mut self, rec: TraceRecord, t: Times) -> Times {
        let kind = rec.kind;
        let result = self.levels[0].cache.access(rec.addr, kind);
        let start = vmax(t, self.levels[0].busy_for(kind));

        if result.hit {
            let dur = if kind.is_write() {
                self.levels[0].write_cycles
            } else {
                self.levels[0].read_cycles
            };
            let mut done = vadd(start, dur);
            self.levels[0].set_busy(kind, done);
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = vmax(done, accepted);
            }
            return done;
        }

        let detected = vadd(start, self.levels[0].read_cycles);

        if result.victim_hit {
            let mut done = vadd(detected, self.levels[0].read_cycles);
            if kind.is_write() && !result.write_through {
                done = vadd(done, self.levels[0].write_cycles);
            }
            self.levels[0].set_busy(kind, done);
            done = vmax(done, self.push_extra_writebacks(0, &result, done));
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, done);
                done = vmax(done, accepted);
            }
            return done;
        }

        if result.fills.is_empty() {
            // Invariant: a miss with no fills can only be a no-allocate
            // write-through; reads always allocate and therefore fill.
            debug_assert!(result.write_through, "read misses always fill");
            self.levels[0].set_busy(kind, detected);
            let accepted = self.push_writeback(0, rec.addr, 4, detected);
            return vmax(detected, accepted);
        }

        let need = self.levels[0].cache.block_bytes_for(kind);
        let (mut completion, chain) = self.service_fills(0, &result.fills, kind, need, detected);
        completion = vmax(
            completion,
            self.push_extra_writebacks(0, &result, completion),
        );
        self.levels[0].set_busy(kind, chain);

        if kind.is_write() {
            if result.write_through {
                let accepted = self.push_writeback(0, rec.addr, 4, completion);
                completion = vmax(completion, accepted);
            } else {
                completion = vadd(completion, self.levels[0].write_cycles);
                self.levels[0].set_busy(kind, completion);
            }
        }
        completion
    }

    fn service_fills(
        &mut self,
        idx: usize,
        fills: &[Fill],
        kind: AccessKind,
        block_bytes: u64,
        start: Times,
    ) -> (Times, Times) {
        let mut completion = start;
        let mut chain = start;
        let ordered = fills
            .iter()
            .filter(|f| f.reason == FillReason::Demand)
            .chain(fills.iter().filter(|f| f.reason != FillReason::Demand));
        for fill in ordered {
            self.levels[idx].fetched_bytes += fill.bytes;
            let done = self.fetch_block(idx + 1, fill.block, kind, fill.bytes, chain);
            chain = done;
            let mut fin = done;
            if let Some(wb) = fill.writeback {
                let accepted = self.push_writeback(idx, wb, block_bytes, done);
                fin = vmax(fin, accepted);
                chain = vmax(chain, accepted);
            }
            if fill.reason == FillReason::Demand {
                completion = fin;
            }
        }
        (completion, chain)
    }

    // ------------------------------------------------------------------
    // Downstream read path — mirrors HierarchySim
    // ------------------------------------------------------------------

    fn fetch_block(
        &mut self,
        idx: usize,
        addr: Address,
        kind: AccessKind,
        need_bytes: u64,
        t: Times,
    ) -> Times {
        if idx == self.levels.len() {
            return self.memory_read(addr, need_bytes, t);
        }
        self.drain_ready_before(idx - 1, t);
        let t = self.resolve_raw_hazard(idx - 1, addr, need_bytes, t);

        let result = self.levels[idx].cache.access(addr, kind);
        let start = vmax(t, self.levels[idx].busy_for(kind));
        let upstream_bus = self.levels[idx - 1].refill_bus;

        if result.hit {
            let done = vadd(start, self.levels[idx].read_cycles);
            self.levels[idx].set_busy(kind, done);
            return vadd(done, upstream_bus.extra_beat_ticks(need_bytes));
        }

        let detected = vadd(start, self.levels[idx].read_cycles);

        if result.victim_hit {
            let mut done = vadd(detected, self.levels[idx].read_cycles);
            self.levels[idx].set_busy(kind, done);
            done = vmax(done, self.push_extra_writebacks(idx, &result, done));
            return vadd(done, upstream_bus.extra_beat_ticks(need_bytes));
        }

        let my_block = self.levels[idx].cache.block_bytes_for(kind);
        let (completion, chain) = self.service_fills(idx, &result.fills, kind, my_block, detected);
        let completion = vmax(
            completion,
            self.push_extra_writebacks(idx, &result, completion),
        );
        self.levels[idx].set_busy(kind, chain);
        vadd(completion, upstream_bus.extra_beat_ticks(need_bytes))
    }

    fn memory_read(&mut self, addr: Address, need_bytes: u64, t: Times) -> Times {
        let lanes = self.lanes;
        let deepest = self.levels.len() - 1;
        self.drain_ready_before(deepest, t);
        let t = self.resolve_raw_hazard(deepest, addr, need_bytes, t);
        let bus = self.levels[deepest].refill_bus;
        let arrival = vadd(t, bus.address_ticks());
        let data = bus.data_ticks(need_bytes);
        let mut out = splat(0);
        for l in 0..lanes {
            let op = self.memories[l].schedule(arrival[l], MemOpKind::Read);
            out[l] = op.end + data[l];
        }
        out
    }

    fn resolve_raw_hazard(&mut self, j: usize, addr: Address, bytes: u64, t: Times) -> Times {
        let mut cleared = t;
        while self.levels[j].out_buffer.overlaps(addr, bytes) {
            let earliest = self.levels[j].ready.front().copied().unwrap_or(cleared);
            cleared = vmax(cleared, self.drain_one(j, vmax(cleared, earliest)));
        }
        cleared
    }

    // ------------------------------------------------------------------
    // Write path (buffers and drains) — mirrors HierarchySim
    // ------------------------------------------------------------------

    fn push_writeback(&mut self, j: usize, addr: Address, bytes: u64, t: Times) -> Times {
        let entry = BufferedWrite {
            addr,
            bytes,
            ready_at: t[0],
        };
        self.levels[j].writeback_bytes += bytes;
        if self.levels[j].out_buffer.try_push(entry) {
            self.levels[j].ready.push_back(t);
            return t;
        }
        // Full: the producer waits for the oldest entry to retire.
        let accepted = vmax(t, self.drain_one(j, t));
        let pushed = self.levels[j].out_buffer.try_push(BufferedWrite {
            addr,
            bytes,
            ready_at: accepted[0],
        });
        // Invariant: drain_one just popped an entry, so the bounded
        // buffer has at least one free slot for this push.
        debug_assert!(pushed, "buffer must have space after forced drain");
        self.levels[j].ready.push_back(accepted);
        accepted
    }

    /// Retires queued writes that could have started strictly before `t`
    /// in the downstream's idle window. The *decision* — which entries
    /// count as "could have started" — is lane 0's; see the module docs.
    fn drain_ready_before(&mut self, j: usize, t: Times) {
        loop {
            let Some(ready) = self.levels[j].ready.front().copied() else {
                return;
            };
            let downstream_free = if j + 1 == self.levels.len() {
                self.memory_busy_until()
            } else {
                self.levels[j + 1].busy_any()
            };
            let would_start = vmax(ready, downstream_free);
            if would_start[0] >= t[0] {
                return;
            }
            self.drain_one(j, would_start);
        }
    }

    fn drain_one(&mut self, j: usize, earliest: Times) -> Times {
        let Some(entry) = self.levels[j].out_buffer.pop() else {
            return earliest;
        };
        let ready = self.levels[j]
            .ready
            // Invariant: every out_buffer push is paired with a ready
            // push, so a successful pop guarantees a ready entry.
            .pop_front()
            .expect("ready times parallel the buffer");
        let start = vmax(earliest, ready);
        self.write_downstream(j, entry.addr, entry.bytes, start)
    }

    fn write_downstream(&mut self, j: usize, addr: Address, bytes: u64, start: Times) -> Times {
        let l = self.lanes;
        let bus = self.levels[j].refill_bus;
        let target = j + 1;
        if target == self.levels.len() {
            let arrival = vadd(start, bus.transfer_ticks(bytes));
            let mut out = splat(0);
            for lane in 0..l {
                let op = self.memories[lane].schedule(arrival[lane], MemOpKind::Write);
                out[lane] = op.end;
            }
            return out;
        }

        let result = self.levels[target].cache.access(addr, AccessKind::Write);
        let arrival = vadd(start, bus.extra_beat_ticks(bytes));
        let wstart = vmax(arrival, self.levels[target].busy_for(AccessKind::Write));

        let mut done = if result.hit {
            vadd(wstart, self.levels[target].write_cycles)
        } else if result.victim_hit {
            vadd(
                vadd(wstart, self.levels[target].read_cycles),
                self.levels[target].write_cycles,
            )
        } else if result.fills.is_empty() {
            let checked = vadd(wstart, self.levels[target].read_cycles);
            let accepted = self.push_writeback(target, addr, bytes, checked);
            vmax(checked, accepted)
        } else {
            let my_block = self.levels[target].cache.block_bytes_for(AccessKind::Write);
            let detected = vadd(wstart, self.levels[target].read_cycles);
            let (_, chain) =
                self.service_fills(target, &result.fills, AccessKind::Write, my_block, detected);
            vadd(chain, self.levels[target].write_cycles)
        };

        if result.write_through {
            let accepted = self.push_writeback(target, addr, bytes, done);
            done = vmax(done, accepted);
        }
        done = vmax(done, self.push_extra_writebacks(target, &result, done));
        self.levels[target].set_busy(AccessKind::Write, done);
        done
    }

    fn push_extra_writebacks(
        &mut self,
        j: usize,
        result: &mlc_cache::AccessResult,
        t: Times,
    ) -> Times {
        let mut accepted = t;
        if result.extra_writebacks.is_empty() {
            return accepted;
        }
        let bytes = match &self.levels[j].cache {
            CacheUnit::Unified(c) => c.geometry().block_bytes(),
            CacheUnit::Split(s) => s.dcache().geometry().block_bytes(),
        };
        for &addr in &result.extra_writebacks {
            accepted = vmax(accepted, self.push_writeback(j, addr, bytes, t));
        }
        accepted
    }

    fn memory_busy_until(&self) -> Times {
        let mut out = splat(0);
        for (l, o) in out.iter_mut().enumerate().take(self.lanes) {
            *o = self.memories[l].busy_until();
        }
        out
    }
}

/// Runs `records` through a timing sweep over `configs`, discarding the
/// first `warmup` records from the statistics, and returns one
/// [`SimResult`] per configuration (in order). Lists longer than
/// [`MAX_LANES`] are transparently split into several passes.
///
/// # Errors
///
/// Returns a [`SimConfigError`] under the same conditions as
/// [`TimingSweepSim::new`].
pub fn simulate_timing_sweep(
    configs: &[HierarchyConfig],
    records: &[TraceRecord],
    warmup: usize,
) -> Result<Vec<SimResult>, SimConfigError> {
    let mut out = Vec::with_capacity(configs.len());
    for chunk in configs.chunks(MAX_LANES.max(1)) {
        let mut sim = TimingSweepSim::new(chunk)?;
        let warm = warmup.min(records.len());
        for rec in &records[..warm] {
            sim.step(*rec);
        }
        sim.reset_measurement();
        for rec in &records[warm..] {
            sim.step(*rec);
        }
        out.extend(sim.results());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::simulate_with_warmup;
    use crate::machine::BaseMachine;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn preset_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips1.config(seed))
            .expect("valid preset")
            .generate_records(n)
    }

    fn base_at(cycles: u64) -> HierarchyConfig {
        BaseMachine::new().l2_cycles(cycles).build().unwrap()
    }

    /// Lane 0 reproduces the scalar simulator cycle-exactly by
    /// construction: same decisions, same order, same arithmetic.
    #[test]
    fn lane0_matches_hierarchy_sim_exactly() {
        let trace = preset_trace(40_000, 3);
        for cycles in [1u64, 3, 7] {
            let solo =
                simulate_with_warmup(base_at(cycles), trace.iter().copied(), 10_000).unwrap();
            let swept =
                simulate_timing_sweep(&[base_at(cycles), base_at(1)], &trace, 10_000).unwrap();
            assert_eq!(swept[0], solo, "decision lane at l2_cycles={cycles}");
        }
    }

    /// All lanes of a sweep agree with per-lane scalar runs on the base
    /// machine's L2 cycle ladder.
    #[test]
    fn lanes_match_scalar_runs() {
        let trace = preset_trace(40_000, 5);
        let ladder = [1u64, 2, 3, 5, 8];
        let configs: Vec<_> = ladder.iter().map(|&c| base_at(c)).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 10_000).unwrap();
        for (&cycles, result) in ladder.iter().zip(&swept) {
            let solo =
                simulate_with_warmup(base_at(cycles), trace.iter().copied(), 10_000).unwrap();
            assert_eq!(result, &solo, "lane at l2_cycles={cycles}");
        }
    }

    #[test]
    fn totals_monotone_in_cycle_time() {
        let trace = preset_trace(30_000, 9);
        let configs: Vec<_> = (1..=6).map(base_at).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 5_000).unwrap();
        for pair in swept.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
        }
    }

    #[test]
    fn functional_counters_shared_across_lanes() {
        let trace = preset_trace(30_000, 11);
        let swept = simulate_timing_sweep(&[base_at(1), base_at(9)], &trace, 5_000).unwrap();
        let (a, b) = (&swept[0], &swept[1]);
        assert_eq!(a.instructions, b.instructions);
        for (la, lb) in a.levels.iter().zip(b.levels.iter()) {
            assert_eq!(la.cache, lb.cache);
            assert_eq!(la.write_buffer, lb.write_buffer);
            assert_eq!(la.fetched_bytes, lb.fetched_bytes);
            assert_eq!(la.writeback_bytes, lb.writeback_bytes);
        }
        assert_eq!(a.memory.reads, b.memory.reads);
        assert_eq!(a.memory.writes, b.memory.writes);
    }

    #[test]
    fn chunking_handles_more_than_max_lanes() {
        let trace = preset_trace(5_000, 13);
        let configs: Vec<_> = (1..=(MAX_LANES as u64 + 3)).map(base_at).collect();
        let swept = simulate_timing_sweep(&configs, &trace, 1_000).unwrap();
        assert_eq!(swept.len(), MAX_LANES + 3);
        for pair in swept.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
        }
    }

    #[test]
    fn rejects_functionally_different_lanes() {
        let a = base_at(3);
        let b = BaseMachine::new()
            .l2_total(mlc_cache::ByteSize::kib(256))
            .build()
            .unwrap();
        let err = TimingSweepSim::new(&[a, b]).unwrap_err();
        assert!(err.to_string().contains("cache organisation"));
    }

    #[test]
    fn rejects_empty_and_oversized() {
        assert!(TimingSweepSim::new(&[]).is_err());
        let configs: Vec<_> = (0..MAX_LANES as u64 + 1).map(|_| base_at(3)).collect();
        assert!(TimingSweepSim::new(&configs).is_err());
    }
}
