//! Conversion between wall-clock nanoseconds and CPU cycles (ticks).
//!
//! The simulator counts time in integer CPU cycles, as the paper does
//! ("since the CPU cycle time is not being varied, the total cycle count
//! is equivalent to the total execution time"). Nanosecond-specified
//! latencies (the memory parameters) are converted once at configuration
//! time, rounding *up* — a conservative choice that never understates a
//! latency.

/// A CPU clock: the bridge between nanoseconds and cycle counts.
///
/// # Examples
///
/// ```
/// use mlc_sim::Clock;
///
/// let clock = Clock::new(10.0); // the base machine's 10 ns cycle
/// assert_eq!(clock.ns_to_cycles(180.0), 18);
/// assert_eq!(clock.ns_to_cycles(125.0), 13); // rounds up
/// assert_eq!(clock.cycles_to_ns(27), 270.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    cycle_ns: f64,
}

impl Clock {
    /// Creates a clock with the given CPU cycle time in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns` is not a positive, finite number.
    pub fn new(cycle_ns: f64) -> Self {
        assert!(
            cycle_ns.is_finite() && cycle_ns > 0.0,
            "CPU cycle time must be positive and finite, got {cycle_ns}"
        );
        Clock { cycle_ns }
    }

    /// The CPU cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        self.cycle_ns
    }

    /// Converts a latency in nanoseconds to whole CPU cycles, rounding up
    /// (with a small epsilon so exact multiples do not round to an extra
    /// cycle through floating-point noise).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        assert!(ns >= 0.0 && ns.is_finite(), "latency must be non-negative");
        ((ns / self.cycle_ns) - 1e-9).ceil().max(0.0) as u64
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_ns
    }
}

impl Default for Clock {
    /// The base machine's 10 ns clock.
    fn default() -> Self {
        Clock::new(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiples() {
        let c = Clock::new(10.0);
        assert_eq!(c.ns_to_cycles(180.0), 18);
        assert_eq!(c.ns_to_cycles(100.0), 10);
        assert_eq!(c.ns_to_cycles(120.0), 12);
        assert_eq!(c.ns_to_cycles(0.0), 0);
    }

    #[test]
    fn rounds_up() {
        let c = Clock::new(10.0);
        assert_eq!(c.ns_to_cycles(101.0), 11);
        assert_eq!(c.ns_to_cycles(109.9), 11);
        let c = Clock::new(7.0);
        assert_eq!(c.ns_to_cycles(180.0), 26); // 25.7…
    }

    #[test]
    fn round_trips_within_a_cycle() {
        let c = Clock::new(5.0);
        for ns in [0.0, 5.0, 12.0, 180.0] {
            let cycles = c.ns_to_cycles(ns);
            assert!(c.cycles_to_ns(cycles) >= ns - 1e-6);
            assert!(c.cycles_to_ns(cycles) < ns + 5.0);
        }
    }

    #[test]
    fn default_is_base_machine() {
        assert_eq!(Clock::default().cycle_ns(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cycle() {
        Clock::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nan() {
        Clock::new(f64::NAN);
    }
}
