//! Feeding the `mlc-obs` metrics core from simulation runs.
//!
//! The simulator's hot path ([`HierarchySim::step`]) never touches a
//! metrics handle — observability here is strictly phase-boundary work:
//! the observed drivers time the warm-up and measurement passes
//! separately, then translate the final [`SimResult`] event counts into
//! named counters. With a disabled handle the drivers cost exactly one
//! branch more than the plain ones.

use mlc_obs::{EventTracer, Metrics};
use mlc_trace::TraceRecord;

use crate::hierarchy::HierarchySim;
use crate::ledger::{CycleLedger, SimHistograms};
use crate::metrics::SimResult;
use crate::sweep::{TimingSweepSim, MAX_LANES};
use crate::{HierarchyConfig, SimConfigError};

/// Translates a [`SimResult`] into `mlc-obs` counters under `scope`
/// (e.g. `sim` → `sim.instructions`, `sim.L1D.read_misses`, …).
///
/// Emits the CPU reference mix, per-level access / miss / drain counts,
/// write-buffer-full stalls, read and write stall cycle totals, and the
/// main-memory traffic — the per-phase event counts the paper's
/// Equation 1 decomposition is audited against.
pub fn observe_result(metrics: &Metrics, scope: &str, result: &SimResult) {
    if !metrics.is_enabled() {
        return;
    }
    let events = result.event_counts();
    metrics.add(&format!("{scope}.instructions"), result.instructions);
    metrics.add(&format!("{scope}.cpu_reads"), events.cpu_reads);
    metrics.add(&format!("{scope}.cpu_writes"), events.cpu_writes);
    metrics.add(&format!("{scope}.total_cycles"), result.total_cycles);
    metrics.add(
        &format!("{scope}.read_stall_cycles"),
        result.read_stall_cycles,
    );
    metrics.add(
        &format!("{scope}.write_stall_cycles"),
        result.write_stall_cycles,
    );
    for (i, level) in result.levels.iter().enumerate() {
        let name = &level.name;
        metrics.add(&format!("{scope}.{name}.reads"), events.reads[i]);
        metrics.add(
            &format!("{scope}.{name}.read_misses"),
            events.read_misses[i],
        );
        metrics.add(&format!("{scope}.{name}.writes"), events.writes[i]);
        metrics.add(
            &format!("{scope}.{name}.drained_writebacks"),
            events.dirty_evictions[i],
        );
        metrics.add(
            &format!("{scope}.{name}.buffer_full_stalls"),
            events.buffer_full_stalls[i],
        );
    }
    metrics.add(&format!("{scope}.memory.reads"), events.memory_reads);
    metrics.add(&format!("{scope}.memory.writes"), events.memory_writes);
}

/// Translates a [`CycleLedger`] into `mlc-obs` counters under `scope`:
/// `{scope}.ledger.execute`, `{scope}.ledger.read_miss.<level>` (one per
/// level plus `read_miss.memory`), `{scope}.ledger.write_buffer_full`,
/// `{scope}.ledger.writeback` and `{scope}.ledger.refresh_wait`.
///
/// Because of the conservation invariant, summing every
/// `{scope}.ledger.*` counter in an exported metrics file reproduces
/// `{scope}.total_cycles` exactly — the property ci.sh audits on real
/// output.
pub fn observe_ledger(metrics: &Metrics, scope: &str, ledger: &CycleLedger, level_names: &[&str]) {
    if !metrics.is_enabled() {
        return;
    }
    for (label, cycles) in ledger.rows(level_names) {
        metrics.add(&format!("{scope}.ledger.{label}"), cycles);
    }
}

/// Merges the simulator's [`SimHistograms`] into `metrics` under
/// `scope`: `{scope}.read_miss_latency.<level>`,
/// `{scope}.write_buffer_occupancy` and `{scope}.inter_miss_distance`,
/// exported as `hist` events in the `mlc-metrics/1` JSONL stream.
pub fn observe_histograms(
    metrics: &Metrics,
    scope: &str,
    hists: &SimHistograms,
    level_names: &[&str],
) {
    if !metrics.is_enabled() {
        return;
    }
    for (j, hist) in hists.read_miss_latency.iter().enumerate() {
        let name = level_names.get(j).copied().unwrap_or("memory");
        metrics.observe_hist(&format!("{scope}.read_miss_latency.{name}"), hist);
    }
    metrics.observe_hist(
        &format!("{scope}.write_buffer_occupancy"),
        &hists.write_buffer_occupancy,
    );
    metrics.observe_hist(
        &format!("{scope}.inter_miss_distance"),
        &hists.inter_miss_distance,
    );
}

/// Everything an attributed simulation run produces beyond the plain
/// [`SimResult`]: the conservation-checked cycle ledger, the latency and
/// occupancy histograms, the (optional) sampled event trace, and the
/// level names that label all of them.
#[derive(Debug, Clone)]
pub struct AttributedRun {
    /// The ordinary simulation result (identical to the unattributed
    /// drivers' output).
    pub result: SimResult,
    /// Cycle attribution; `ledger.total() == result.total_cycles`.
    pub ledger: CycleLedger,
    /// Read-miss latency, write-buffer occupancy and inter-miss
    /// distance distributions.
    pub histograms: SimHistograms,
    /// The sampled event trace, when a sampling period was requested.
    pub tracer: Option<EventTracer>,
    /// Hierarchy level names, upstream first.
    pub level_names: Vec<String>,
}

/// [`crate::simulate_with_warmup`] plus full observability: the cycle
/// ledger, histograms, and (when `sample_every` is set) an every-Nth
/// sampled event trace. Ledger counters and histograms are fed into
/// `metrics` at the end of the measurement phase; warm-up activity is
/// excluded from all of them (sampled *events*, keyed to global record
/// indices, do include the warm-up so the trace aligns with the input).
///
/// Cycle-for-cycle identical to the unobserved driver.
///
/// # Errors
///
/// Returns a [`SimConfigError`] if the configuration is invalid.
pub fn simulate_with_warmup_attributed(
    config: HierarchyConfig,
    records: &[TraceRecord],
    warmup: usize,
    metrics: &Metrics,
    sample_every: Option<u64>,
) -> Result<AttributedRun, SimConfigError> {
    let mut sim = HierarchySim::new(config)?;
    if let Some(every) = sample_every {
        sim.attach_tracer(EventTracer::new(every.max(1)));
    }
    let warm = warmup.min(records.len());
    let timer = metrics.time_phase("sim.warmup");
    for rec in &records[..warm] {
        sim.step(*rec);
    }
    timer.stop();
    sim.reset_measurement();
    let timer = metrics.time_phase("sim.measure");
    for rec in &records[warm..] {
        sim.step(*rec);
    }
    timer.stop();
    let result = sim.result();
    let level_names = sim.level_names();
    let names: Vec<&str> = level_names.iter().map(String::as_str).collect();
    observe_result(metrics, "sim", &result);
    observe_ledger(metrics, "sim", sim.ledger(), &names);
    observe_histograms(metrics, "sim", sim.histograms(), &names);
    Ok(AttributedRun {
        ledger: sim.ledger().clone(),
        histograms: sim.histograms().clone(),
        tracer: sim.take_tracer(),
        level_names,
        result,
    })
}

/// [`crate::simulate_with_warmup`] with per-phase timing and event
/// counts fed into `metrics`: phases `sim.warmup` and `sim.measure`,
/// counters under the `sim` scope.
///
/// Cycle-for-cycle identical to the unobserved driver.
///
/// # Errors
///
/// Returns a [`SimConfigError`] if the configuration is invalid.
pub fn simulate_with_warmup_observed(
    config: HierarchyConfig,
    records: &[TraceRecord],
    warmup: usize,
    metrics: &Metrics,
) -> Result<SimResult, SimConfigError> {
    let mut sim = HierarchySim::new(config)?;
    let warm = warmup.min(records.len());
    let timer = metrics.time_phase("sim.warmup");
    for rec in &records[..warm] {
        sim.step(*rec);
    }
    timer.stop();
    sim.reset_measurement();
    let timer = metrics.time_phase("sim.measure");
    for rec in &records[warm..] {
        sim.step(*rec);
    }
    timer.stop();
    let result = sim.result();
    observe_result(metrics, "sim", &result);
    Ok(result)
}

/// [`crate::simulate_timing_sweep`] with phase timing fed into
/// `metrics`: phases `sweep.warmup` and `sweep.measure` accumulate
/// across lane chunks, and the counter `sweep.lane_passes` counts how
/// many [`TimingSweepSim`] passes the configuration list split into.
///
/// # Errors
///
/// Returns a [`SimConfigError`] under the same conditions as
/// [`TimingSweepSim::new`].
pub fn simulate_timing_sweep_observed(
    configs: &[HierarchyConfig],
    records: &[TraceRecord],
    warmup: usize,
    metrics: &Metrics,
) -> Result<Vec<SimResult>, SimConfigError> {
    let mut out = Vec::with_capacity(configs.len());
    for chunk in configs.chunks(MAX_LANES.max(1)) {
        let mut sim = TimingSweepSim::new(chunk)?;
        metrics.add("sweep.lane_passes", 1);
        let warm = warmup.min(records.len());
        let timer = metrics.time_phase("sweep.warmup");
        sim.run_slice(&records[..warm]);
        timer.stop();
        sim.reset_measurement();
        let timer = metrics.time_phase("sweep.measure");
        sim.run_slice(&records[warm..]);
        timer.stop();
        out.extend(sim.results());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::simulate_with_warmup;
    use crate::machine::{base_machine, BaseMachine};
    use crate::sweep::simulate_timing_sweep;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn preset_trace(n: usize) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips1.config(11))
            .expect("valid preset")
            .generate_records(n)
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let trace = preset_trace(30_000);
        let metrics = Metrics::enabled();
        let observed =
            simulate_with_warmup_observed(base_machine(), &trace, 7_500, &metrics).unwrap();
        let plain = simulate_with_warmup(base_machine(), trace.iter().copied(), 7_500).unwrap();
        assert_eq!(observed.total_cycles, plain.total_cycles);
        assert_eq!(observed.instructions, plain.instructions);

        let snap = metrics.snapshot();
        let phase_names: Vec<&str> = snap.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(phase_names, ["sim.measure", "sim.warmup"]);
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(get("sim.instructions"), plain.instructions);
        assert_eq!(get("sim.total_cycles"), plain.total_cycles);
        assert!(get("sim.L1.reads") > 0);
        assert!(get("sim.L2.reads") > 0);
        assert!(get("sim.memory.reads") > 0);
    }

    #[test]
    fn observed_sweep_matches_plain_sweep() {
        let trace = preset_trace(20_000);
        let configs: Vec<HierarchyConfig> = (1..=26)
            .map(|c| {
                BaseMachine::new()
                    .l2_cycles(c)
                    .build()
                    .expect("base machine variants are valid")
            })
            .collect();
        let metrics = Metrics::enabled();
        let observed = simulate_timing_sweep_observed(&configs, &trace, 5_000, &metrics).unwrap();
        let plain = simulate_timing_sweep(&configs, &trace, 5_000).unwrap();
        assert_eq!(observed.len(), plain.len());
        for (a, b) in observed.iter().zip(&plain) {
            assert_eq!(a.total_cycles, b.total_cycles);
        }
        let snap = metrics.snapshot();
        // 26 configs over 24 lanes = 2 passes.
        assert_eq!(snap.counters, vec![("sweep.lane_passes".into(), 2)]);
        assert_eq!(snap.phases.len(), 2);
        assert!(snap.phases.iter().all(|(_, s)| s.calls == 2));
    }

    #[test]
    fn disabled_metrics_change_nothing() {
        let trace = preset_trace(5_000);
        let metrics = Metrics::disabled();
        let observed =
            simulate_with_warmup_observed(base_machine(), &trace, 1_000, &metrics).unwrap();
        let plain = simulate_with_warmup(base_machine(), trace.iter().copied(), 1_000).unwrap();
        assert_eq!(observed.total_cycles, plain.total_cycles);
        assert!(metrics.snapshot().counters.is_empty());
    }
}
