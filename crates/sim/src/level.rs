//! One level of the simulated hierarchy: a cache unit, its outbound write
//! buffer, and its timing state.

use mlc_cache::CacheUnit;
use mlc_mem::{Bus, WriteBuffer};
use mlc_trace::AccessKind;

/// Internal per-level simulation state.
///
/// `busy` tracks when each side of the cache becomes free. Split levels
/// have independent instruction/data timing (the base machine's L1 can
/// service an instruction fetch and a data access in the same cycle);
/// unified levels keep both entries equal.
#[derive(Debug, Clone)]
pub(crate) struct Level {
    pub(crate) name: String,
    pub(crate) cache: CacheUnit,
    pub(crate) read_cycles: u64,
    pub(crate) write_cycles: u64,
    /// Bus over which this level refills from (and writes back to) the
    /// next level down.
    pub(crate) refill_bus: Bus,
    /// Writes from this level awaiting drain downstream.
    pub(crate) out_buffer: WriteBuffer,
    split: bool,
    busy: [u64; 2],
    /// Bytes fetched into this level from downstream (demand, group,
    /// prefetch and sub-block fills alike).
    pub(crate) fetched_bytes: u64,
    /// Bytes this level pushed downstream through its write buffer.
    pub(crate) writeback_bytes: u64,
}

#[inline]
fn side(kind: AccessKind) -> usize {
    usize::from(kind.is_data())
}

impl Level {
    pub(crate) fn new(
        name: String,
        cache: CacheUnit,
        read_cycles: u64,
        write_cycles: u64,
        refill_bus: Bus,
        buffer_entries: usize,
    ) -> Self {
        let split = matches!(cache, CacheUnit::Split(_));
        Level {
            name,
            cache,
            read_cycles,
            write_cycles,
            refill_bus,
            out_buffer: WriteBuffer::new(buffer_entries),
            split,
            busy: [0; 2],
            fetched_bytes: 0,
            writeback_bytes: 0,
        }
    }

    /// When the side of the cache serving `kind` becomes free.
    #[inline]
    pub(crate) fn busy_for(&self, kind: AccessKind) -> u64 {
        if self.split {
            self.busy[side(kind)]
        } else {
            self.busy[0]
        }
    }

    /// Marks the side serving `kind` busy until `t` (both sides for a
    /// unified cache). Busy times only move forward.
    #[inline]
    pub(crate) fn set_busy(&mut self, kind: AccessKind, t: u64) {
        if self.split {
            let s = side(kind);
            self.busy[s] = self.busy[s].max(t);
        } else {
            self.busy[0] = self.busy[0].max(t);
            self.busy[1] = self.busy[0];
        }
    }

    /// The latest busy time across both sides.
    #[inline]
    pub(crate) fn busy_any(&self) -> u64 {
        self.busy[0].max(self.busy[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::{ByteSize, CacheConfig};

    fn unit() -> CacheUnit {
        CacheUnit::unified(
            CacheConfig::builder()
                .total(ByteSize::kib(4))
                .block_bytes(16)
                .build()
                .unwrap(),
        )
    }

    fn split_unit() -> CacheUnit {
        let half = CacheConfig::builder()
            .total(ByteSize::kib(2))
            .block_bytes(16)
            .build()
            .unwrap();
        CacheUnit::split(half, half)
    }

    #[test]
    fn unified_busy_is_shared() {
        let mut l = Level::new("L2".into(), unit(), 3, 6, Bus::new(16, 3), 4);
        l.set_busy(AccessKind::Read, 10);
        assert_eq!(l.busy_for(AccessKind::InstructionFetch), 10);
        assert_eq!(l.busy_for(AccessKind::Write), 10);
        assert_eq!(l.busy_any(), 10);
    }

    #[test]
    fn split_busy_is_per_side() {
        let mut l = Level::new("L1".into(), split_unit(), 1, 2, Bus::new(16, 3), 4);
        l.set_busy(AccessKind::InstructionFetch, 10);
        l.set_busy(AccessKind::Write, 4);
        assert_eq!(l.busy_for(AccessKind::InstructionFetch), 10);
        assert_eq!(l.busy_for(AccessKind::Read), 4);
        assert_eq!(l.busy_any(), 10);
    }

    #[test]
    fn busy_never_moves_backwards() {
        let mut l = Level::new("L2".into(), unit(), 3, 6, Bus::new(16, 3), 4);
        l.set_busy(AccessKind::Read, 10);
        l.set_busy(AccessKind::Read, 5);
        assert_eq!(l.busy_for(AccessKind::Read), 10);
    }
}
