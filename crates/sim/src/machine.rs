//! Preset machine configurations, starting from the paper's base machine.
//!
//! The base machine (§2): a 10 ns single-chip CPU with a split 4 KB
//! on-chip L1 (2 KB I + 2 KB D, direct-mapped, 4-word blocks, write-back,
//! 2-cycle write hits) and an external 512 KB direct-mapped L2 (8-word
//! blocks, 3-CPU-cycle cycle time, write-back, 2-L2-cycle write hits),
//! 4-word buses at the L2 rate, and a 180/100/120 ns main memory.

use mlc_cache::{ByteSize, CacheConfig, ConfigError};

use crate::config::{CpuConfig, HierarchyConfig, LevelCacheConfig, LevelConfig, MemoryConfig};

/// Builder for variations of the paper's base machine.
///
/// Every experiment in the paper is a sweep of one or two of these knobs
/// around the same base point.
///
/// # Examples
///
/// ```
/// use mlc_cache::ByteSize;
/// use mlc_sim::machine::BaseMachine;
///
/// // Figure 4-1's (1 MB, 5-cycle) grid point:
/// let config = BaseMachine::new()
///     .l2_total(ByteSize::mib(1))
///     .l2_cycles(5)
///     .build()?;
/// assert_eq!(config.levels[1].read_cycles, 5);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BaseMachine {
    cpu_cycle_ns: f64,
    l1_total: ByteSize,
    l1_block_bytes: u64,
    l1_ways: u32,
    l2_total: ByteSize,
    l2_block_bytes: u64,
    l2_ways: u32,
    l2_cycles: u64,
    memory_scale: f64,
}

impl Default for BaseMachine {
    fn default() -> Self {
        BaseMachine {
            cpu_cycle_ns: 10.0,
            l1_total: ByteSize::kib(4),
            l1_block_bytes: 16,
            l1_ways: 1,
            l2_total: ByteSize::kib(512),
            l2_block_bytes: 32,
            l2_ways: 1,
            l2_cycles: 3,
            memory_scale: 1.0,
        }
    }
}

impl BaseMachine {
    /// Starts from the paper's base machine.
    pub fn new() -> Self {
        BaseMachine::default()
    }

    /// Sets the CPU cycle time in nanoseconds (base: 10 ns).
    pub fn cpu_cycle_ns(&mut self, ns: f64) -> &mut Self {
        self.cpu_cycle_ns = ns;
        self
    }

    /// Sets the *combined* L1 size; each split half gets half of it
    /// (base: 4 KB → 2 KB + 2 KB).
    pub fn l1_total(&mut self, total: ByteSize) -> &mut Self {
        self.l1_total = total;
        self
    }

    /// Sets the L1 block size in bytes (base: 16).
    pub fn l1_block_bytes(&mut self, bytes: u64) -> &mut Self {
        self.l1_block_bytes = bytes;
        self
    }

    /// Sets the L1 associativity (base: direct-mapped).
    pub fn l1_ways(&mut self, ways: u32) -> &mut Self {
        self.l1_ways = ways;
        self
    }

    /// Sets the L2 size (base: 512 KB).
    pub fn l2_total(&mut self, total: ByteSize) -> &mut Self {
        self.l2_total = total;
        self
    }

    /// Sets the L2 block size in bytes (base: 32).
    pub fn l2_block_bytes(&mut self, bytes: u64) -> &mut Self {
        self.l2_block_bytes = bytes;
        self
    }

    /// Sets the L2 associativity (base: direct-mapped).
    pub fn l2_ways(&mut self, ways: u32) -> &mut Self {
        self.l2_ways = ways;
        self
    }

    /// Sets the L2 cycle time in CPU cycles (base: 3).
    pub fn l2_cycles(&mut self, cycles: u64) -> &mut Self {
        self.l2_cycles = cycles;
        self
    }

    /// Uniformly scales the main-memory times (Figure 4-4 uses 2.0).
    pub fn memory_scale(&mut self, factor: f64) -> &mut Self {
        self.memory_scale = factor;
        self
    }

    /// Builds the two-level hierarchy configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any cache organisation is invalid
    /// (e.g. an L1 size that cannot be split into two power-of-two
    /// halves).
    pub fn build(&self) -> Result<HierarchyConfig, ConfigError> {
        let half = ByteSize::new(self.l1_total.get() / 2);
        let l1_half = |_name: &str| -> Result<CacheConfig, ConfigError> {
            CacheConfig::builder()
                .total(half)
                .block_bytes(self.l1_block_bytes)
                .ways(self.l1_ways)
                .build()
        };
        let icache = l1_half("I")?;
        let dcache = l1_half("D")?;
        let l2 = CacheConfig::builder()
            .total(self.l2_total)
            .block_bytes(self.l2_block_bytes)
            .ways(self.l2_ways)
            .build()?;
        Ok(HierarchyConfig {
            cpu: CpuConfig {
                cycle_ns: self.cpu_cycle_ns,
            },
            levels: vec![
                LevelConfig::new("L1", LevelCacheConfig::Split { icache, dcache }, 1),
                LevelConfig::new("L2", LevelCacheConfig::Unified(l2), self.l2_cycles),
            ],
            memory: MemoryConfig::default().scaled(self.memory_scale),
        })
    }
}

/// The paper's base machine, exactly as described in §2.
///
/// # Panics
///
/// Never panics: the base parameters are statically valid.
pub fn base_machine() -> HierarchyConfig {
    BaseMachine::new()
        .build()
        .expect("base machine parameters are valid")
}

/// A single-level machine: one unified cache of the given organisation
/// and cycle time in front of the (optionally scaled) base memory. This
/// is the paper's "solo" configuration, used for single-vs-multi-level
/// comparisons.
pub fn single_level(
    cache: CacheConfig,
    read_cycles: u64,
    cpu_cycle_ns: f64,
    memory_scale: f64,
) -> HierarchyConfig {
    HierarchyConfig {
        cpu: CpuConfig {
            cycle_ns: cpu_cycle_ns,
        },
        levels: vec![LevelConfig::new(
            "solo",
            LevelCacheConfig::Unified(cache),
            read_cycles,
        )],
        memory: MemoryConfig::default().scaled(memory_scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_machine_matches_paper() {
        let c = base_machine();
        assert_eq!(c.cpu.cycle_ns, 10.0);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.levels[0].cache.total_bytes(), 4096);
        assert_eq!(c.levels[0].read_cycles, 1);
        assert_eq!(c.levels[0].write_cycles, 2);
        assert_eq!(c.levels[1].cache.total_bytes(), 512 * 1024);
        assert_eq!(c.levels[1].read_cycles, 3);
        assert_eq!(c.levels[1].write_cycles, 6);
        assert_eq!(c.memory.read_ns, 180.0);
        assert!(c.validate().is_ok());
        match &c.levels[0].cache {
            LevelCacheConfig::Split { icache, dcache } => {
                assert_eq!(icache.geometry().total_bytes(), 2048);
                assert_eq!(icache.geometry().block_bytes(), 16);
                assert_eq!(dcache.geometry().block_bytes(), 16);
            }
            other => panic!("L1 should be split, got {other:?}"),
        }
        match &c.levels[1].cache {
            LevelCacheConfig::Unified(l2) => {
                assert_eq!(l2.geometry().block_bytes(), 32);
                assert!(l2.geometry().is_direct_mapped());
            }
            other => panic!("L2 should be unified, got {other:?}"),
        }
    }

    #[test]
    fn builder_knobs() {
        let c = BaseMachine::new()
            .l1_total(ByteSize::kib(32))
            .l2_total(ByteSize::mib(4))
            .l2_ways(8)
            .l2_cycles(7)
            .memory_scale(2.0)
            .build()
            .unwrap();
        assert_eq!(c.levels[0].cache.total_bytes(), 32 * 1024);
        assert_eq!(c.levels[1].cache.total_bytes(), 4 << 20);
        assert_eq!(c.levels[1].read_cycles, 7);
        assert_eq!(c.memory.read_ns, 360.0);
        match &c.levels[1].cache {
            LevelCacheConfig::Unified(l2) => assert_eq!(l2.geometry().ways(), 8),
            _ => unreachable!(),
        }
    }

    #[test]
    fn invalid_l1_rejected() {
        // 2KB total → 1KB halves with 16B blocks: fine. 1KB total → 512B
        // halves: still fine. Non-power-of-two halves: caught.
        assert!(BaseMachine::new()
            .l1_total(ByteSize::new(3000))
            .build()
            .is_err());
    }

    #[test]
    fn single_level_shape() {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .build()
            .unwrap();
        let c = single_level(cache, 2, 10.0, 1.0);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.levels[0].read_cycles, 2);
        assert!(c.validate().is_ok());
        // Deepest level: backplane defaults to the level's own rate.
        assert_eq!(c.refill_bus_cycles(0), 2);
    }
}
