//! Solo miss ratios: a cache measured as the *only* cache in the system.
//!
//! The paper defines a cache's **solo** miss ratio as the miss ratio it
//! would have if every other cache were removed (§2). Because miss
//! sequences are independent of timing, the solo ratio needs only a
//! functional simulation, which is what this module provides — it is an
//! order of magnitude faster than a timed run and is used heavily by the
//! Figure 3 experiments.

use mlc_cache::{CacheStats, CacheUnit};
use mlc_trace::TraceRecord;

use crate::config::{LevelCacheConfig, SimConfigError};

/// Functionally simulates `records` against a lone cache, returning its
/// statistics. The first `warmup` records touch the cache but are
/// excluded from the counters (the paper's cold-start removal).
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig};
/// use mlc_sim::{solo, LevelCacheConfig};
/// use mlc_trace::TraceRecord;
///
/// let cache = CacheConfig::builder().total(ByteSize::kib(4)).build()?;
/// let trace = vec![TraceRecord::read(0x40); 100];
/// let stats = solo::solo_stats(LevelCacheConfig::Unified(cache), trace, 0);
/// assert_eq!(stats.read_misses(), 1); // one cold miss, then hits
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
pub fn solo_stats<I>(config: LevelCacheConfig, records: I, warmup: usize) -> CacheStats
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut unit = match config {
        LevelCacheConfig::Unified(c) => CacheUnit::unified(c),
        LevelCacheConfig::Split { icache, dcache } => CacheUnit::split(icache, dcache),
    };
    let mut iter = records.into_iter();
    for rec in iter.by_ref().take(warmup) {
        unit.access(rec.addr, rec.kind);
    }
    unit.reset_stats();
    for rec in iter {
        unit.access(rec.addr, rec.kind);
    }
    unit.stats()
}

/// The solo *read* miss ratio (loads + instruction fetches), or `None` if
/// the post-warm-up trace contains no reads.
pub fn solo_read_miss_ratio<I>(config: LevelCacheConfig, records: I, warmup: usize) -> Option<f64>
where
    I: IntoIterator<Item = TraceRecord>,
{
    solo_stats(config, records, warmup).local_read_miss_ratio()
}

/// Set-sampled solo statistics (Puzak's set sampling): simulates only the
/// references mapping to a 1-in-2^`sample_shift` subset of the cache's
/// sets, using a proportionally smaller cache. Miss *ratios* from the
/// returned stats estimate the full cache's ratios at a fraction of the
/// cost; absolute counts cover only the sample.
///
/// The sample keeps the sets whose top `sample_shift` index bits are
/// zero, so the reduced cache's own indexing still spreads references
/// over all of its sets. Policies that cross set boundaries (fetch
/// groups, prefetching, victim buffers, sub-blocking) are not carried
/// into the sample — set sampling assumes per-set independence.
///
/// # Panics
///
/// Panics if the cache has fewer than `2^sample_shift` sets. Use
/// [`try_sampled_solo_stats`] when `sample_shift` comes from user input.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig};
/// use mlc_sim::solo;
/// use mlc_trace::TraceRecord;
///
/// let cache = CacheConfig::builder().total(ByteSize::kib(64)).build()?;
/// let trace: Vec<_> = (0..10_000u64).map(|i| TraceRecord::read(i * 64)).collect();
/// let exact = solo::solo_stats(
///     mlc_sim::LevelCacheConfig::Unified(cache), trace.iter().copied(), 0);
/// let sampled = solo::sampled_solo_stats(cache, trace.iter().copied(), 0, 2);
/// // A pure streaming trace misses everywhere, in sample and full alike.
/// assert_eq!(exact.local_read_miss_ratio(), sampled.local_read_miss_ratio());
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
pub fn sampled_solo_stats<I>(
    config: mlc_cache::CacheConfig,
    records: I,
    warmup: usize,
    sample_shift: u32,
) -> CacheStats
where
    I: IntoIterator<Item = TraceRecord>,
{
    match try_sampled_solo_stats(config, records, warmup, sample_shift) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// [`sampled_solo_stats`] with the sample-size check surfaced as a typed
/// error instead of a panic — `sample_shift` typically arrives straight
/// from a CLI flag.
///
/// # Errors
///
/// Returns [`SimConfigError`] if the cache has fewer than
/// `2^sample_shift` sets (equivalently: if the sampled cache would be
/// smaller than one set).
pub fn try_sampled_solo_stats<I>(
    config: mlc_cache::CacheConfig,
    records: I,
    warmup: usize,
    sample_shift: u32,
) -> Result<CacheStats, SimConfigError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let geom = config.geometry();
    let sets = geom.sets();
    if sample_shift >= 64 || sets < 1 << sample_shift {
        return Err(SimConfigError::new(format!(
            "cannot sample 1 in 2^{sample_shift} of {sets} sets"
        )));
    }
    let reduced = mlc_cache::CacheConfig::builder()
        .total(mlc_cache::ByteSize::new(geom.total_bytes() >> sample_shift))
        .block_bytes(geom.block_bytes())
        .ways(geom.ways())
        .replacement(config.replacement())
        .write_policy(config.write_policy())
        .alloc_policy(config.alloc_policy())
        .seed(config.seed())
        .build()
        // The invariant holds because total/sets/ways only shrank by a
        // power of two that the check above proved divides the set count.
        .expect("halving a valid geometry stays valid");
    let keep_shift = sets.trailing_zeros() - sample_shift;
    let mut cache = mlc_cache::Cache::new(reduced);
    let mut seen = 0usize;
    for rec in records {
        seen += 1;
        if geom.set_index(rec.addr) >> keep_shift != 0 {
            continue;
        }
        cache.access(rec.addr, rec.kind);
        if seen <= warmup {
            // Warm-up boundary is counted on the *unsampled* stream so it
            // matches full runs; clearing per record is cheap and leaves
            // exactly the post-boundary references in the counters.
            cache.reset_stats();
        }
    }
    Ok(*cache.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::{ByteSize, CacheConfig};
    use mlc_trace::TraceRecord;

    fn cache(kib: u64) -> LevelCacheConfig {
        LevelCacheConfig::Unified(
            CacheConfig::builder()
                .total(ByteSize::kib(kib))
                .block_bytes(16)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn cold_miss_counted_without_warmup() {
        let trace = vec![TraceRecord::read(0x40); 10];
        let stats = solo_stats(cache(4), trace, 0);
        assert_eq!(stats.read_misses(), 1);
        assert_eq!(stats.read_references(), 10);
    }

    #[test]
    fn warmup_discards_cold_misses() {
        let trace = vec![TraceRecord::read(0x40); 10];
        let ratio = solo_read_miss_ratio(cache(4), trace, 1).unwrap();
        assert_eq!(ratio, 0.0);
    }

    #[test]
    fn bigger_cache_never_misses_more_on_looping_trace() {
        // A cyclic walk over 8 KB of blocks: fits in 8 KB+, thrashes 4 KB.
        let mut trace = Vec::new();
        for lap in 0..20 {
            for b in 0..512u64 {
                trace.push(TraceRecord::read(b * 16));
            }
            let _ = lap;
        }
        let small = solo_read_miss_ratio(cache(4), trace.iter().copied(), 512).unwrap();
        let big = solo_read_miss_ratio(cache(16), trace.iter().copied(), 512).unwrap();
        assert!(big < small, "big {big} vs small {small}");
        assert_eq!(big, 0.0);
        assert_eq!(small, 1.0, "LRU-like direct-mapped cyclic thrash");
    }

    #[test]
    fn split_configuration_routes() {
        let half = CacheConfig::builder()
            .total(ByteSize::kib(2))
            .block_bytes(16)
            .build()
            .unwrap();
        let split = LevelCacheConfig::Split {
            icache: half,
            dcache: half,
        };
        let trace = vec![
            TraceRecord::ifetch(0x40),
            TraceRecord::read(0x40),
            TraceRecord::ifetch(0x40),
            TraceRecord::read(0x40),
        ];
        let stats = solo_stats(split, trace, 0);
        // Each side takes its own cold miss, then hits.
        assert_eq!(stats.read_misses(), 2);
        assert_eq!(stats.read_references(), 4);
    }

    #[test]
    fn sampling_with_shift_zero_is_exact() {
        use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
        let trace = MultiProgramGenerator::new(Preset::Mips2.config(4))
            .unwrap()
            .generate_records(50_000);
        let config = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .build()
            .unwrap();
        let exact = solo_stats(
            LevelCacheConfig::Unified(config),
            trace.iter().copied(),
            10_000,
        );
        let sampled = sampled_solo_stats(config, trace.iter().copied(), 10_000, 0);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampling_estimates_miss_ratio() {
        use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
        let trace = MultiProgramGenerator::new(Preset::Vms2.config(9))
            .unwrap()
            .generate_records(400_000);
        let config = CacheConfig::builder()
            .total(ByteSize::kib(128))
            .block_bytes(32)
            .build()
            .unwrap();
        let exact = solo_stats(
            LevelCacheConfig::Unified(config),
            trace.iter().copied(),
            100_000,
        )
        .local_read_miss_ratio()
        .unwrap();
        for shift in [1u32, 2, 3] {
            let stats = sampled_solo_stats(config, trace.iter().copied(), 100_000, shift);
            let est = stats.local_read_miss_ratio().unwrap();
            assert!(
                (est - exact).abs() / exact < 0.25,
                "shift {shift}: estimate {est} vs exact {exact}"
            );
            // The sample sees on the order of 1/2^shift of the
            // references (workload index skew makes this loose — the
            // very non-uniformity set sampling has to average over).
            let frac = stats.read_references() as f64 / 300_000.0;
            let expect = 1.0 / f64::from(1 << shift);
            assert!(
                frac > expect / 4.0 && frac < expect * 4.0,
                "shift {shift}: sample fraction {frac} vs nominal {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sampling_rejects_oversized_shift() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .build()
            .unwrap(); // 4 sets
        sampled_solo_stats(config, Vec::new(), 0, 3);
    }

    #[test]
    fn try_sampling_returns_typed_error_for_oversized_shift() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .build()
            .unwrap(); // 4 sets
        for shift in [3u32, 64, u32::MAX] {
            let err = try_sampled_solo_stats(config, Vec::new(), 0, shift).unwrap_err();
            assert!(err.to_string().contains("cannot sample"), "{err}");
        }
        assert!(try_sampled_solo_stats(config, Vec::new(), 0, 2).is_ok());
    }

    #[test]
    fn warmup_longer_than_trace_counts_nothing() {
        let trace = vec![TraceRecord::read(0x40); 5];
        let stats = solo_stats(cache(4), trace, 100);
        assert_eq!(stats.total_references(), 0);
        assert_eq!(solo_read_miss_ratio(cache(4), vec![], 0), None);
    }
}
