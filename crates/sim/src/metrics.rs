//! Simulation results: cycle accounting and the paper's three miss-ratio
//! families.
//!
//! Naming note: this module is about *what a simulation measured* —
//! [`SimResult`] and the Equation 1 [`EventCounts`]. It is unrelated to
//! the observability crate's [`mlc_obs::Metrics`] handle (counters,
//! gauges, phase timers, JSONL export); `crate::observe` translates the
//! former into the latter at phase boundaries. Import [`SimResult`] /
//! [`EventCounts`] from `mlc_sim`, and the pipeline type from `mlc_obs`.

use std::fmt;

use mlc_cache::CacheStats;
use mlc_mem::{MemoryStats, WriteBufferStats};

/// Measured statistics for one hierarchy level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelMetrics {
    /// The level's display name.
    pub name: String,
    /// Hit/miss counters (split levels report the merged I+D counters).
    pub cache: CacheStats,
    /// The level's outbound write buffer counters.
    pub write_buffer: WriteBufferStats,
    /// Bytes fetched into this level from the next level down.
    pub fetched_bytes: u64,
    /// Bytes this level wrote downstream (write-backs and
    /// write-throughs).
    pub writeback_bytes: u64,
}

impl LevelMetrics {
    /// Total bus traffic below this level: fetches plus write-backs.
    /// The paper's §5 uses this to argue that associative second-level
    /// caches are "substantially better at reducing the memory traffic".
    pub fn traffic_bytes(&self) -> u64 {
        self.fetched_bytes + self.writeback_bytes
    }

    /// The *local* read miss ratio: misses over read references reaching
    /// this level. `None` if the level saw no reads.
    pub fn local_read_miss_ratio(&self) -> Option<f64> {
        self.cache.local_read_miss_ratio()
    }

    /// The *global* read miss ratio: this level's read misses over CPU
    /// read references. `None` if the CPU issued no reads.
    pub fn global_read_miss_ratio(&self, cpu_reads: u64) -> Option<f64> {
        if cpu_reads == 0 {
            None
        } else {
            Some(self.cache.read_misses() as f64 / cpu_reads as f64)
        }
    }
}

/// The complete result of a simulation run.
///
/// All counters cover the *measurement window*: everything after the most
/// recent warm-up reset.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total execution time in CPU cycles.
    pub total_cycles: u64,
    /// Instructions executed (= instruction fetches issued).
    pub instructions: u64,
    /// CPU read references (instruction fetches + loads) — the
    /// denominator of every global miss ratio.
    pub cpu_reads: u64,
    /// Data loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Cycles the CPU spent stalled on reads (ifetch and load misses).
    pub read_stall_cycles: u64,
    /// Cycles attributable to writes beyond their base cycle (write-hit
    /// extra cycles, write-miss fetches, buffer-full waits) — the paper's
    /// per-store `z`<sub>L1write</sub> numerator.
    pub write_stall_cycles: u64,
    /// The CPU cycle time, for converting cycles to wall-clock time.
    pub cpu_cycle_ns: f64,
    /// Per-level statistics, upstream first.
    pub levels: Vec<LevelMetrics>,
    /// Main-memory counters.
    pub memory: MemoryStats,
}

/// The per-level event counts that drive the paper's Equation 1 — the
/// quantities a cycle-time model needs to reconstitute execution time:
/// how often each level was read, missed and written, how much dirty
/// traffic it pushed down, how often its write buffer blocked a
/// producer, and how long main memory held requests back (busy +
/// refresh gap).
///
/// Produced by [`SimResult::event_counts`]; all vectors are indexed
/// upstream-first like [`SimResult::levels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCounts {
    /// CPU read references (instruction fetches + loads).
    pub cpu_reads: u64,
    /// CPU stores.
    pub cpu_writes: u64,
    /// Read references reaching each level.
    pub reads: Vec<u64>,
    /// Read misses at each level.
    pub read_misses: Vec<u64>,
    /// Write references reaching each level (stores at L1, drained
    /// buffer traffic below).
    pub writes: Vec<u64>,
    /// Dirty evictions (write-backs) leaving each level.
    pub dirty_evictions: Vec<u64>,
    /// Times each level's write buffer was full when a producer pushed —
    /// every one is a synchronous buffer-full stall.
    pub buffer_full_stalls: Vec<u64>,
    /// Main-memory reads.
    pub memory_reads: u64,
    /// Main-memory writes.
    pub memory_writes: u64,
    /// Ticks main-memory requests waited for the memory to become
    /// available — the busy/refresh-gap overlap of Equation 1's
    /// `T-recovery` term.
    ///
    /// **Units**: memory "ticks" equal CPU cycles in every `mlc-sim`
    /// integration — [`crate::HierarchySim`] builds its
    /// [`mlc_mem::MemoryTiming`] through `Clock::ns_to_cycles`, so the
    /// memory model counts in the CPU's clock. (The name keeps "ticks"
    /// because `mlc-mem` itself is clock-agnostic: handed a timing in
    /// some other unit, its stats are in that unit.) Use
    /// [`EventCounts::refresh_wait_cycles`] when the CPU-cycle meaning
    /// is intended — the cycle ledger's `refresh_wait` bucket counts in
    /// the same unit — and [`EventCounts::refresh_wait_ns`] to convert
    /// to wall-clock time.
    pub refresh_wait_ticks: u64,
}

impl EventCounts {
    /// [`EventCounts::refresh_wait_ticks`] in CPU cycles. In `mlc-sim`
    /// integrations the two units coincide (the simulator drives main
    /// memory on the CPU clock), so this is the identity — it exists to
    /// make call sites say which unit they mean.
    pub fn refresh_wait_cycles(&self) -> u64 {
        self.refresh_wait_ticks
    }

    /// The refresh/busy wait as wall-clock nanoseconds, given the CPU
    /// cycle time the run used ([`SimResult::cpu_cycle_ns`]).
    pub fn refresh_wait_ns(&self, cpu_cycle_ns: f64) -> f64 {
        self.refresh_wait_ticks as f64 * cpu_cycle_ns
    }
}

impl SimResult {
    /// The per-level event counts behind the paper's Equation 1.
    ///
    /// These are the *functional* quantities of the run — independent of
    /// cycle-time parameters except for [`EventCounts::refresh_wait_ticks`],
    /// which depends on request spacing and is the reason cycle-time
    /// reconstruction cannot be purely analytic (see `mlc-core`'s
    /// one-pass sweep engine).
    pub fn event_counts(&self) -> EventCounts {
        EventCounts {
            cpu_reads: self.cpu_reads,
            cpu_writes: self.stores,
            reads: self
                .levels
                .iter()
                .map(|l| l.cache.read_references())
                .collect(),
            read_misses: self.levels.iter().map(|l| l.cache.read_misses()).collect(),
            writes: self
                .levels
                .iter()
                .map(|l| l.cache.write_references())
                .collect(),
            dirty_evictions: self.levels.iter().map(|l| l.cache.writebacks).collect(),
            buffer_full_stalls: self
                .levels
                .iter()
                .map(|l| l.write_buffer.full_events)
                .collect(),
            memory_reads: self.memory.reads,
            memory_writes: self.memory.writes,
            refresh_wait_ticks: self.memory.wait_ticks,
        }
    }

    /// Mean cycles per instruction.
    ///
    /// Returns `None` if no instructions were executed.
    pub fn cpi(&self) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(self.total_cycles as f64 / self.instructions as f64)
        }
    }

    /// Total execution time in nanoseconds.
    pub fn execution_time_ns(&self) -> f64 {
        self.total_cycles as f64 * self.cpu_cycle_ns
    }

    /// Execution time relative to another run of the same workload —
    /// the paper's "relative execution time" y-axis.
    ///
    /// Returns `None` if `baseline` executed zero cycles.
    pub fn relative_to(&self, baseline: &SimResult) -> Option<f64> {
        if baseline.total_cycles == 0 {
            None
        } else {
            Some(self.execution_time_ns() / baseline.execution_time_ns())
        }
    }

    /// The global read miss ratio of level `idx`.
    pub fn global_read_miss_ratio(&self, idx: usize) -> Option<f64> {
        self.levels.get(idx)?.global_read_miss_ratio(self.cpu_reads)
    }

    /// The local read miss ratio of level `idx`.
    pub fn local_read_miss_ratio(&self, idx: usize) -> Option<f64> {
        self.levels.get(idx)?.local_read_miss_ratio()
    }

    /// Mean write (and write-stall) cycles per store — the paper's
    /// `z`<sub>L1write</sub>. `None` if no stores executed.
    pub fn write_cycles_per_store(&self) -> Option<f64> {
        if self.stores == 0 {
            None
        } else {
            Some(self.write_stall_cycles as f64 / self.stores as f64)
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} instructions (CPI {:.3})",
            self.total_cycles,
            self.instructions,
            self.cpi().unwrap_or(f64::NAN)
        )?;
        for (i, level) in self.levels.iter().enumerate() {
            writeln!(
                f,
                "  {}: local read miss {:.4}, global read miss {:.4}",
                level.name,
                level.local_read_miss_ratio().unwrap_or(f64::NAN),
                self.global_read_miss_ratio(i).unwrap_or(f64::NAN),
            )?;
        }
        write!(
            f,
            "  memory: {} reads, {} writes",
            self.memory.reads, self.memory.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_trace::AccessKind;

    fn result() -> SimResult {
        let mut l1 = CacheStats::default();
        for _ in 0..90 {
            l1.record(AccessKind::InstructionFetch, true);
        }
        for _ in 0..10 {
            l1.record(AccessKind::InstructionFetch, false);
        }
        let mut l2 = CacheStats::default();
        for _ in 0..7 {
            l2.record(AccessKind::InstructionFetch, true);
        }
        for _ in 0..3 {
            l2.record(AccessKind::InstructionFetch, false);
        }
        SimResult {
            total_cycles: 150,
            instructions: 100,
            cpu_reads: 100,
            loads: 0,
            stores: 20,
            read_stall_cycles: 40,
            write_stall_cycles: 30,
            cpu_cycle_ns: 10.0,
            levels: vec![
                LevelMetrics {
                    name: "L1".into(),
                    cache: l1,
                    write_buffer: Default::default(),
                    fetched_bytes: 160,
                    writeback_bytes: 32,
                },
                LevelMetrics {
                    name: "L2".into(),
                    cache: l2,
                    write_buffer: Default::default(),
                    fetched_bytes: 96,
                    writeback_bytes: 0,
                },
            ],
            memory: MemoryStats::default(),
        }
    }

    #[test]
    fn cpi_and_time() {
        let r = result();
        assert_eq!(r.cpi(), Some(1.5));
        assert_eq!(r.execution_time_ns(), 1500.0);
    }

    #[test]
    fn miss_ratio_families() {
        let r = result();
        // L1 local == L1 global (all CPU reads reach L1).
        assert!((r.local_read_miss_ratio(0).unwrap() - 0.10).abs() < 1e-12);
        assert!((r.global_read_miss_ratio(0).unwrap() - 0.10).abs() < 1e-12);
        // L2: local 3/10, global 3/100.
        assert!((r.local_read_miss_ratio(1).unwrap() - 0.30).abs() < 1e-12);
        assert!((r.global_read_miss_ratio(1).unwrap() - 0.03).abs() < 1e-12);
        assert_eq!(r.global_read_miss_ratio(5), None);
    }

    #[test]
    fn relative_execution_time() {
        let a = result();
        let mut b = result();
        b.total_cycles = 300;
        assert_eq!(b.relative_to(&a), Some(2.0));
        let mut zero = result();
        zero.total_cycles = 0;
        assert_eq!(a.relative_to(&zero), None);
    }

    #[test]
    fn write_cycles_per_store() {
        let r = result();
        assert_eq!(r.write_cycles_per_store(), Some(1.5));
        let mut r2 = result();
        r2.stores = 0;
        assert_eq!(r2.write_cycles_per_store(), None);
    }

    #[test]
    fn zero_instruction_guards() {
        let mut r = result();
        r.instructions = 0;
        assert_eq!(r.cpi(), None);
        r.cpu_reads = 0;
        assert_eq!(r.global_read_miss_ratio(0), None);
    }

    #[test]
    fn traffic_sums_both_directions() {
        let r = result();
        assert_eq!(r.levels[0].traffic_bytes(), 192);
        assert_eq!(r.levels[1].traffic_bytes(), 96);
    }

    #[test]
    fn event_counts_mirror_level_stats() {
        let r = result();
        let e = r.event_counts();
        assert_eq!(e.cpu_reads, 100);
        assert_eq!(e.cpu_writes, 20);
        assert_eq!(e.reads, vec![100, 10]);
        assert_eq!(e.read_misses, vec![10, 3]);
        assert_eq!(e.writes, vec![0, 0]);
        assert_eq!(e.dirty_evictions, vec![0, 0]);
        assert_eq!(e.buffer_full_stalls, vec![0, 0]);
        assert_eq!(e.refresh_wait_ticks, 0);
    }

    #[test]
    fn display_mentions_levels() {
        let s = result().to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("L2"));
        assert!(s.contains("CPI"));
    }
}
