//! Trace-driven, timing-accurate multi-level cache hierarchy simulation.
//!
//! This crate is the reproduction of the simulator described in §2 of
//! Przybylski, Horowitz & Hennessy, *Characteristics of
//! Performance-Optimal Multi-Level Cache Hierarchies* (ISCA 1989): a
//! RISC-like CPU model in front of an arbitrary-depth cache hierarchy
//! with per-level cycle times, split or unified caches, inter-level
//! buses, 4-entry write buffers between all levels, and a refresh-limited
//! main memory.
//!
//! * [`HierarchyConfig`] / [`machine`] — describe a machine (the paper's
//!   base machine is one call away).
//! * [`HierarchySim`] / [`simulate`] / [`simulate_with_warmup`] — run a
//!   reference trace and collect [`SimResult`].
//! * [`solo`] — fast functional runs for the paper's *solo* miss ratios.
//! * [`ledger`] — exhaustive cycle attribution: every cycle of
//!   [`SimResult::total_cycles`] lands in exactly one Equation 1 bucket
//!   (execute, per-level read-miss stall, write-buffer-full, writeback,
//!   refresh wait), with histograms and a sampled event tracer on top.
//!
//! Naming note: [`metrics`] (this crate) holds *simulation results* —
//! [`SimResult`] and the Equation 1 [`EventCounts`]. The `mlc_obs`
//! crate's `Metrics` type is the *observability pipeline* (counters,
//! gauges, phase timers, JSONL export); [`observe`] bridges the two at
//! phase boundaries.
//!
//! # Examples
//!
//! ```
//! use mlc_sim::{machine, simulate_with_warmup};
//! use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
//!
//! let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(7))
//!     .expect("preset is valid");
//! let trace = gen.generate_records(50_000);
//! let result = simulate_with_warmup(machine::base_machine(), trace, 10_000)?;
//! println!("CPI = {:.2}", result.cpi().unwrap());
//! assert!(result.global_read_miss_ratio(1).unwrap() <= 1.0);
//! # Ok::<(), mlc_sim::SimConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod config;
mod hierarchy;
pub mod ledger;
mod level;
pub mod machine;
pub mod metrics;
pub mod observe;
pub mod solo;
pub mod sweep;

pub use clock::Clock;
pub use config::{
    CpuConfig, HierarchyConfig, LevelCacheConfig, LevelConfig, MemoryConfig, SimConfigError,
};
pub use hierarchy::{simulate, simulate_with_warmup, HierarchySim};
pub use ledger::{CycleLedger, SimHistograms};
pub use metrics::{EventCounts, LevelMetrics, SimResult};
pub use observe::{
    observe_histograms, observe_ledger, observe_result, simulate_timing_sweep_observed,
    simulate_with_warmup_attributed, simulate_with_warmup_observed, AttributedRun,
};
pub use sweep::{simulate_timing_sweep, TimingSweepSim, LANE_WIDTHS, MAX_LANES};
