//! Hierarchy configuration: CPU, cache levels and main memory.

use std::error::Error;
use std::fmt;

use mlc_cache::CacheConfig;

/// An invalid hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfigError {
    message: String,
}

impl SimConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SimConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hierarchy configuration: {}", self.message)
    }
}

impl Error for SimConfigError {}

/// The CPU model's parameters.
///
/// The paper's CPU (§2) is a RISC-like machine executing one instruction
/// fetch and at most one data access per non-stall cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// CPU cycle time in nanoseconds (base machine: 10 ns).
    pub cycle_ns: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig { cycle_ns: 10.0 }
    }
}

/// The cache organisation of one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelCacheConfig {
    /// A unified cache serving all reference kinds.
    Unified(CacheConfig),
    /// Split instruction/data caches (the base machine's L1).
    Split {
        /// Instruction cache configuration.
        icache: CacheConfig,
        /// Data cache configuration.
        dcache: CacheConfig,
    },
}

impl LevelCacheConfig {
    /// Total capacity in bytes (both halves for a split level).
    pub fn total_bytes(&self) -> u64 {
        match self {
            LevelCacheConfig::Unified(c) => c.geometry().total_bytes(),
            LevelCacheConfig::Split { icache, dcache } => {
                icache.geometry().total_bytes() + dcache.geometry().total_bytes()
            }
        }
    }
}

/// One level of the hierarchy: cache organisation plus timing.
///
/// The level's *cycle time* follows the paper's convention: reads that tag
/// hit complete in `read_cycles`; write hits take `write_cycles`
/// (typically twice the read time).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelConfig {
    /// Display name ("L1", "L2", …).
    pub name: String,
    /// Cache organisation.
    pub cache: LevelCacheConfig,
    /// Read access time, in CPU cycles. This is the level's cycle time in
    /// the paper's terminology.
    pub read_cycles: u64,
    /// Write-hit time, in CPU cycles (paper: two level cycles).
    pub write_cycles: u64,
    /// Entries in the write buffer draining this level's evictions
    /// downstream (paper: 4 at every level).
    pub write_buffer_entries: usize,
    /// Width, in bytes, of the bus over which this level refills from the
    /// next level down (paper: 4 words = 16 bytes).
    pub refill_bus_bytes: u64,
    /// Cycle time of that refill bus in CPU cycles; `None` derives the
    /// paper's convention (the downstream cache's cycle time, or this
    /// level's own cycle time when the next level down is main memory —
    /// the "backplane" case).
    pub refill_bus_cycles: Option<u64>,
}

impl LevelConfig {
    /// Creates a level with paper-default buffering and bus parameters.
    ///
    /// `read_cycles` is the level's cycle time; the write-hit time
    /// defaults to twice that.
    pub fn new(name: impl Into<String>, cache: LevelCacheConfig, read_cycles: u64) -> Self {
        LevelConfig {
            name: name.into(),
            cache,
            read_cycles,
            write_cycles: 2 * read_cycles,
            write_buffer_entries: 4,
            refill_bus_bytes: 16,
            refill_bus_cycles: None,
        }
    }
}

/// Main-memory parameters, in nanoseconds (converted to CPU cycles at
/// simulator construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Read operation time: address to full data (paper: 180 ns).
    pub read_ns: f64,
    /// Write operation time (paper: 100 ns).
    pub write_ns: f64,
    /// Minimum refresh/cycle gap between data operations (paper: 120 ns).
    pub gap_ns: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            read_ns: 180.0,
            write_ns: 100.0,
            gap_ns: 120.0,
        }
    }
}

impl MemoryConfig {
    /// Returns this memory uniformly slowed by `factor` (Figure 4-4 uses
    /// factor 2).
    pub fn scaled(&self, factor: f64) -> Self {
        MemoryConfig {
            read_ns: self.read_ns * factor,
            write_ns: self.write_ns * factor,
            gap_ns: self.gap_ns * factor,
        }
    }
}

/// A complete hierarchy: CPU, one or more cache levels, main memory.
///
/// Level 0 is nearest the CPU (the paper's "first level"); higher indices
/// are *downstream* (closer to memory).
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig};
/// use mlc_sim::{CpuConfig, HierarchyConfig, LevelCacheConfig, LevelConfig, MemoryConfig};
///
/// let l1 = CacheConfig::builder().total(ByteSize::kib(4)).block_bytes(16).build()?;
/// let config = HierarchyConfig {
///     cpu: CpuConfig::default(),
///     levels: vec![LevelConfig::new("L1", LevelCacheConfig::Unified(l1), 1)],
///     memory: MemoryConfig::default(),
/// };
/// assert!(config.validate().is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// CPU parameters.
    pub cpu: CpuConfig,
    /// Cache levels, upstream first.
    pub levels: Vec<LevelConfig>,
    /// Main-memory parameters.
    pub memory: MemoryConfig,
}

impl HierarchyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if !(self.cpu.cycle_ns.is_finite() && self.cpu.cycle_ns > 0.0) {
            return Err(SimConfigError::new(format!(
                "CPU cycle time must be positive, got {}",
                self.cpu.cycle_ns
            )));
        }
        if self.levels.is_empty() {
            return Err(SimConfigError::new("at least one cache level is required"));
        }
        for (i, level) in self.levels.iter().enumerate() {
            let ctx =
                |msg: String| SimConfigError::new(format!("level {} ({}): {msg}", i, level.name));
            if level.read_cycles == 0 {
                return Err(ctx("read_cycles must be positive".into()));
            }
            if level.write_cycles == 0 {
                return Err(ctx("write_cycles must be positive".into()));
            }
            if level.write_buffer_entries == 0 {
                return Err(ctx("write_buffer_entries must be positive".into()));
            }
            if level.refill_bus_bytes == 0 || !level.refill_bus_bytes.is_power_of_two() {
                return Err(ctx(format!(
                    "refill_bus_bytes must be a power of two, got {}",
                    level.refill_bus_bytes
                )));
            }
            if level.refill_bus_cycles == Some(0) {
                return Err(ctx("refill_bus_cycles must be positive".into()));
            }
        }
        for (name, v) in [
            ("read_ns", self.memory.read_ns),
            ("write_ns", self.memory.write_ns),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(SimConfigError::new(format!(
                    "memory {name} must be positive, got {v}"
                )));
            }
        }
        if !(self.memory.gap_ns.is_finite() && self.memory.gap_ns >= 0.0) {
            return Err(SimConfigError::new("memory gap_ns must be non-negative"));
        }
        Ok(())
    }

    /// The effective refill-bus cycle time for level `idx`, applying the
    /// paper's defaulting convention.
    pub fn refill_bus_cycles(&self, idx: usize) -> u64 {
        let level = &self.levels[idx];
        if let Some(c) = level.refill_bus_cycles {
            return c;
        }
        match self.levels.get(idx + 1) {
            Some(downstream) => downstream.read_cycles,
            // Deepest level: the backplane cycles at this level's rate.
            None => level.read_cycles,
        }
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::ByteSize;

    fn cache(kib: u64, block: u64) -> CacheConfig {
        CacheConfig::builder()
            .total(ByteSize::kib(kib))
            .block_bytes(block)
            .build()
            .unwrap()
    }

    fn two_level() -> HierarchyConfig {
        HierarchyConfig {
            cpu: CpuConfig::default(),
            levels: vec![
                LevelConfig::new(
                    "L1",
                    LevelCacheConfig::Split {
                        icache: cache(2, 16),
                        dcache: cache(2, 16),
                    },
                    1,
                ),
                LevelConfig::new("L2", LevelCacheConfig::Unified(cache(512, 32)), 3),
            ],
            memory: MemoryConfig::default(),
        }
    }

    #[test]
    fn base_machine_validates() {
        assert!(two_level().validate().is_ok());
    }

    #[test]
    fn level_defaults_follow_paper() {
        let l = LevelConfig::new("L2", LevelCacheConfig::Unified(cache(512, 32)), 3);
        assert_eq!(l.write_cycles, 6);
        assert_eq!(l.write_buffer_entries, 4);
        assert_eq!(l.refill_bus_bytes, 16);
        assert_eq!(l.refill_bus_cycles, None);
    }

    #[test]
    fn refill_bus_defaults_follow_paper() {
        let c = two_level();
        // CPU–L2 bus cycles at the L2 rate.
        assert_eq!(c.refill_bus_cycles(0), 3);
        // Backplane cycles at the L2 rate too.
        assert_eq!(c.refill_bus_cycles(1), 3);
    }

    #[test]
    fn refill_bus_defaults_three_levels() {
        let mut c = two_level();
        c.levels.push(LevelConfig::new(
            "L3",
            LevelCacheConfig::Unified(cache(4096, 64)),
            8,
        ));
        // L1 refills at L2's rate, L2 at L3's, and the deepest level's
        // backplane at its own rate.
        assert_eq!(c.refill_bus_cycles(0), 3);
        assert_eq!(c.refill_bus_cycles(1), 8);
        assert_eq!(c.refill_bus_cycles(2), 8);
    }

    #[test]
    fn refill_bus_override_wins() {
        let mut c = two_level();
        c.levels[0].refill_bus_cycles = Some(2);
        assert_eq!(c.refill_bus_cycles(0), 2);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut c = two_level();
        c.cpu.cycle_ns = 0.0;
        assert!(c.validate().is_err());

        let mut c = two_level();
        c.levels.clear();
        assert!(c.validate().is_err());

        let mut c = two_level();
        c.levels[1].read_cycles = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("L2"));

        let mut c = two_level();
        c.levels[0].write_buffer_entries = 0;
        assert!(c.validate().is_err());

        let mut c = two_level();
        c.levels[0].refill_bus_bytes = 12;
        assert!(c.validate().is_err());

        let mut c = two_level();
        c.memory.read_ns = -1.0;
        assert!(c.validate().is_err());

        let mut c = two_level();
        c.memory.gap_ns = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn memory_scaling() {
        let m = MemoryConfig::default().scaled(2.0);
        assert_eq!(m.read_ns, 360.0);
        assert_eq!(m.write_ns, 200.0);
        assert_eq!(m.gap_ns, 240.0);
    }

    #[test]
    fn level_cache_total_bytes() {
        let split = LevelCacheConfig::Split {
            icache: cache(2, 16),
            dcache: cache(2, 16),
        };
        assert_eq!(split.total_bytes(), 4096);
        let uni = LevelCacheConfig::Unified(cache(512, 32));
        assert_eq!(uni.total_bytes(), 512 * 1024);
    }

    #[test]
    fn error_display() {
        let e = SimConfigError::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
