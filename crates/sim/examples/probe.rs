//! Quick calibration probe: base-machine miss ratios and simulator speed.
//!
//! Env knobs: N (records), THETA, DSCALE, ISCALE, FARP (far_ref_prob),
//! FARU (far base units).

use std::time::Instant;

use mlc_sim::{machine::BaseMachine, simulate_with_warmup};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

fn envf(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = envf("N", 2_000_000.0) as usize;
    let warmup = (n as f64 * envf("WARM", 0.25)) as usize;
    for preset in [Preset::Vms1, Preset::Mips1] {
        let t0 = Instant::now();
        let mut config = preset.config(42);
        for p in config.processes.iter_mut() {
            p.theta = envf("THETA", p.theta);
            p.data_locality_scale = envf("DSCALE", p.data_locality_scale);
            p.inst_locality_scale = envf("ISCALE", p.inst_locality_scale);
            p.far_ref_prob = envf("FARP", p.far_ref_prob);
            if std::env::var("FARU").is_ok() {
                let shift = p.far_region_units.trailing_zeros()
                    - (16 * 1024u64)
                        .trailing_zeros()
                        .min(p.far_region_units.trailing_zeros());
                p.far_region_units = (envf("FARU", 16384.0) as u64) << shift;
            }
        }
        let mut gen = MultiProgramGenerator::new(config).unwrap();
        let trace = gen.generate_records(n);
        let gen_time = t0.elapsed();

        let t0 = Instant::now();
        let result = simulate_with_warmup(
            BaseMachine::new().build().unwrap(),
            trace.iter().copied(),
            warmup,
        )
        .unwrap();
        let sim_time = t0.elapsed();
        println!(
            "{}: gen {:.2}s, sim {:.2}s ({:.1} Mrefs/s)",
            preset.name(),
            gen_time.as_secs_f64(),
            sim_time.as_secs_f64(),
            n as f64 / sim_time.as_secs_f64() / 1e6
        );
        println!(
            "  CPI {:.3}  L1 global {:.4}  L2 local {:.4}  L2 global {:.4}",
            result.cpi().unwrap(),
            result.global_read_miss_ratio(0).unwrap(),
            result.local_read_miss_ratio(1).unwrap(),
            result.global_read_miss_ratio(1).unwrap(),
        );
        use mlc_cache::ByteSize;
        let mut prev: Option<f64> = None;
        for kib in [8u64, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            let cfg = BaseMachine::new()
                .l2_total(ByteSize::kib(kib))
                .build()
                .unwrap();
            let r = simulate_with_warmup(cfg, trace.iter().copied(), warmup).unwrap();
            let g = r.global_read_miss_ratio(1).unwrap();
            let factor = prev.map(|p| g / p).unwrap_or(f64::NAN);
            println!(
                "  L2 {kib:>5} KB: global {g:.5} (x{factor:.2})  cycles {}",
                r.total_cycles
            );
            prev = Some(g);
        }
    }
}
