//! End-to-end exercises of the `check-invariants` runtime checker: full
//! simulator runs that must complete with zero invariant violations (a
//! violation panics with the trace-record index and hierarchy state).
//!
//! This test crate's `mlc-sim` dev-dependency enables the feature, so the
//! per-access assertions are live in every run below.

use mlc_cache::{ByteSize, CacheConfig, Replacement, WritePolicy};
use mlc_sim::machine::{base_machine, single_level, BaseMachine};
use mlc_sim::{simulate, simulate_with_warmup, HierarchySim, LevelCacheConfig, LevelConfig};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

fn preset_trace(preset: Preset, n: usize, seed: u64) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(preset.config(seed))
        .expect("preset is valid")
        .generate_records(n)
}

/// The acceptance run: the paper-default machine over a synthetic
/// multiprogramming trace, warm-up discarded, with the invariant checker
/// armed throughout.
#[test]
fn base_machine_full_run_has_zero_violations() {
    let trace = preset_trace(Preset::Vms1, 100_000, 42);
    let result = simulate_with_warmup(base_machine(), trace, 25_000).expect("config is valid");
    assert!(result.total_cycles >= result.instructions);
}

#[test]
fn every_preset_holds_invariants_on_the_base_machine() {
    for (i, preset) in [Preset::Mips1, Preset::Vms1, Preset::Ultrix]
        .into_iter()
        .enumerate()
    {
        let trace = preset_trace(preset, 20_000, 7 + i as u64);
        simulate(base_machine(), trace).expect("config is valid");
    }
}

#[test]
fn write_through_hierarchy_holds_invariants() {
    let wt = CacheConfig::builder()
        .total(ByteSize::kib(4))
        .block_bytes(16)
        .write_policy(WritePolicy::WriteThrough)
        .build()
        .unwrap();
    let mut config = single_level(wt, 1, 10.0, 1.0);
    config.levels[0].write_buffer_entries = 2;
    simulate(config, preset_trace(Preset::Mips1, 20_000, 11)).expect("config is valid");
}

#[test]
fn victim_buffer_and_random_replacement_hold_invariants() {
    let cache = CacheConfig::builder()
        .total(ByteSize::kib(1))
        .block_bytes(16)
        .replacement(Replacement::Random)
        .victim_entries(4)
        .build()
        .unwrap();
    let config = single_level(cache, 1, 10.0, 1.0);
    simulate(config, preset_trace(Preset::Vms1, 20_000, 13)).expect("config is valid");
}

#[test]
fn sub_blocked_cache_holds_invariants() {
    let cache = CacheConfig::builder()
        .total(ByteSize::kib(2))
        .block_bytes(32)
        .sub_blocks(4)
        .build()
        .unwrap();
    let config = single_level(cache, 1, 10.0, 1.0);
    simulate(config, preset_trace(Preset::Ultrix, 20_000, 17)).expect("config is valid");
}

#[test]
fn three_level_hierarchy_holds_invariants() {
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(2))
        .block_bytes(32)
        .build()
        .unwrap();
    let mut config = base_machine();
    config
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));
    simulate(config, preset_trace(Preset::Mips1, 30_000, 19)).expect("config is valid");
}

#[test]
fn flush_and_drain_preserve_invariants() {
    let mut sim = HierarchySim::new(base_machine()).expect("config is valid");
    let trace = preset_trace(Preset::Vms1, 10_000, 23);
    sim.run(trace.iter().copied());
    sim.flush_all();
    // Post-flush accesses still pass the per-record checks.
    sim.run(trace.into_iter().take(2_000));
}

#[test]
fn tiny_thrashing_cache_holds_invariants() {
    // A 64 B direct-mapped cache thrashes constantly — maximal eviction
    // and write-back churn under the checker.
    let config = single_level(
        CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .build()
            .unwrap(),
        1,
        10.0,
        1.0,
    );
    simulate(config, preset_trace(Preset::Mips1, 15_000, 29)).expect("config is valid");
}

#[test]
fn small_l2_with_heavy_writeback_traffic_holds_invariants() {
    let config = BaseMachine::new()
        .l2_total(ByteSize::kib(8))
        .build()
        .unwrap();
    simulate(config, preset_trace(Preset::Ultrix, 30_000, 31)).expect("config is valid");
}
