//! Paired fixture tests for the static-analysis support rules: MLC016
//! (replacement unsupported) and MLC017 (write-policy widening).
//!
//! `bounds_good.mlc` and `bounds_bad.mlc` describe the same machine;
//! the bad one steps outside the statically analysable subset in
//! exactly three places, and the spans below are pinned to its line
//! numbers.

use mlc_check::{lint, RuleId, Severity, Span};
use mlc_cli::machine_file::parse_machine_with_spans;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn good_fixture_is_clean() {
    let (config, map) = parse_machine_with_spans(&fixture("bounds_good.mlc")).expect("parses");
    let report = lint(&config, &map);
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn bad_fixture_fires_mlc016_and_mlc017_with_spans() {
    let (config, map) = parse_machine_with_spans(&fixture("bounds_bad.mlc")).expect("parses");
    let report = lint(&config, &map);

    // Split L1 with random replacement: one MLC016 per half, pinned to
    // the `replacement = random` line.
    let mlc016: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleId::ReplacementUnsupported)
        .collect();
    assert_eq!(mlc016.len(), 2, "{:?}", report.diagnostics);
    for d in &mlc016 {
        assert_eq!(d.severity, Severity::Advice);
        assert_eq!(d.span, Some(Span::line(13)));
        assert!(d.message.contains("replacement = lru"), "{}", d.message);
    }

    // Write-through L2 (line 21) and no-write-allocate L2 (line 22):
    // one MLC017 each.
    let mlc017: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == RuleId::WritePolicyWidening)
        .collect();
    assert_eq!(mlc017.len(), 2, "{:?}", report.diagnostics);
    assert!(mlc017.iter().all(|d| d.severity == Severity::Advice));
    let spans: Vec<_> = mlc017.iter().map(|d| d.span).collect();
    assert!(spans.contains(&Some(Span::line(21))), "{spans:?}");
    assert!(spans.contains(&Some(Span::line(22))), "{spans:?}");

    // Advice only: the simulator still runs these machines.
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
}

#[test]
fn bad_fixture_fires_nothing_else() {
    let (config, map) = parse_machine_with_spans(&fixture("bounds_bad.mlc")).expect("parses");
    let report = lint(&config, &map);
    assert!(report.diagnostics.iter().all(|d| matches!(
        d.rule,
        RuleId::ReplacementUnsupported | RuleId::WritePolicyWidening
    )));
}
