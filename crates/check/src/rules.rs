//! The lint rules: static analysis of a [`HierarchyConfig`] against the
//! paper's well-formedness assumptions.
//!
//! Each rule encodes one precondition of the paper's methodology (see
//! [`RuleId::paper_note`]) or one degenerate design-space shape that a
//! sweep should prune before burning simulation time. Rules fire as
//! [`Diagnostic`]s collected into a [`Report`]; when the configuration
//! came from a machine file, a [`SourceMap`] pins each finding to the
//! responsible lines.

use mlc_cache::{AllocPolicy, ByteSize, CacheConfig, Replacement, WritePolicy};
use mlc_sim::{HierarchyConfig, LevelCacheConfig, LevelConfig};

use crate::diag::{Diagnostic, Report, RuleId};
use crate::source::SourceMap;

/// Runs every lint rule over `config`.
///
/// `map` supplies machine-file line spans; pass [`SourceMap::new`] for a
/// configuration built in code (diagnostics then carry no span).
pub fn lint(config: &HierarchyConfig, map: &SourceMap) -> Report {
    let mut report = Report::clean();
    for (i, level) in config.levels.iter().enumerate() {
        lint_level(config, i, level, map, &mut report);
    }
    for pair in config.levels.windows(2).enumerate() {
        let (i, [up, down]) = pair else {
            unreachable!()
        };
        lint_adjacent(i, up, down, map, &mut report);
    }
    lint_validation(config, map, &mut report);
    report
}

/// The cache units of a level: one for unified, two for split.
fn units(cache: &LevelCacheConfig) -> Vec<(&'static str, &CacheConfig)> {
    match cache {
        LevelCacheConfig::Unified(c) => vec![("", c)],
        LevelCacheConfig::Split { icache, dcache } => vec![("I", icache), ("D", dcache)],
    }
}

fn min_block(cache: &LevelCacheConfig) -> u64 {
    units(cache)
        .iter()
        .map(|(_, c)| c.geometry().block_bytes())
        .min()
        .unwrap_or(0)
}

fn max_block(cache: &LevelCacheConfig) -> u64 {
    units(cache)
        .iter()
        .map(|(_, c)| c.geometry().block_bytes())
        .max()
        .unwrap_or(0)
}

/// `"L2 (level 2)"` — name plus 1-based depth, the paper's numbering.
fn describe(i: usize, level: &LevelConfig) -> String {
    format!("{} (level {})", level.name, i + 1)
}

fn size(bytes: u64) -> ByteSize {
    ByteSize::new(bytes)
}

/// Rules over a single level.
fn lint_level(
    config: &HierarchyConfig,
    i: usize,
    level: &LevelConfig,
    map: &SourceMap,
    report: &mut Report,
) {
    let who = describe(i, level);

    // MLC006: sub-blocking shrinks the fetch unit below the block size,
    // outside the paper's fetch >= block assumption.
    for (side, cache) in units(&level.cache) {
        if cache.sub_blocks() > 1 {
            let block = cache.geometry().block_bytes();
            let sector = block / u64::from(cache.sub_blocks());
            report.push(Diagnostic::new(
                RuleId::FetchUnit,
                format!(
                    "{who}{}: sub-blocking fetches {sector}-byte sectors of a \
                     {block}-byte block, below the paper's fetch >= block assumption",
                    if side.is_empty() {
                        String::new()
                    } else {
                        format!(" {side}-cache")
                    },
                ),
                map.level_key_or_section(i, "sub_blocks"),
            ));
        }
    }

    // MLC007: a write-through cache sends every store downstream; a
    // write buffer shallower than the paper's 4 entries will stall.
    let write_through = units(&level.cache)
        .iter()
        .any(|(_, c)| c.write_policy() == WritePolicy::WriteThrough);
    if write_through && level.write_buffer_entries < 4 {
        report.push(Diagnostic::new(
            RuleId::WriteBufferDepth,
            format!(
                "{who} is write-through with only {} write-buffer entr{}; \
                 the paper uses 4 at every level",
                level.write_buffer_entries,
                if level.write_buffer_entries == 1 {
                    "y"
                } else {
                    "ies"
                },
            ),
            map.level_key(i, "write_buffer")
                .or_else(|| map.level_key_or_section(i, "write_policy")),
        ));
    }

    // MLC008: a refill bus wider than the block it transfers wastes pins.
    let narrowest_block = min_block(&level.cache);
    if narrowest_block > 0 && level.refill_bus_bytes > narrowest_block {
        report.push(Diagnostic::new(
            RuleId::BusWiderThanBlock,
            format!(
                "{who}: refill bus is {} bytes wide but transfers {}-byte blocks",
                level.refill_bus_bytes, narrowest_block,
            ),
            map.level_key_or_section(i, "bus_bytes"),
        ));
    }

    // MLC013: bus widths must be powers of two for the timing model's
    // transfer-count arithmetic to be meaningful.
    if level.refill_bus_bytes == 0 || !level.refill_bus_bytes.is_power_of_two() {
        report.push(Diagnostic::new(
            RuleId::BusPowerOfTwo,
            format!(
                "{who}: refill bus width {} bytes is not a power of two",
                level.refill_bus_bytes,
            ),
            map.level_key_or_section(i, "bus_bytes"),
        ));
    }

    // MLC009: a level whose access time reaches main memory's cannot
    // reduce average access time — a degenerate sweep point.
    let level_ns = level.read_cycles as f64 * config.cpu.cycle_ns;
    if config.cpu.cycle_ns > 0.0 && level_ns >= config.memory.read_ns {
        report.push(Diagnostic::new(
            RuleId::DegenerateLevel,
            format!(
                "{who}: access time {level_ns} ns is no faster than main memory \
                 ({} ns); this level cannot improve performance",
                config.memory.read_ns,
            ),
            map.level_key_or_section(i, "cycles"),
        ));
    }

    // MLC010: split halves with different organisations are legal but
    // outside the paper's design space (and unrepresentable in the
    // machine-file format).
    if let LevelCacheConfig::Split { icache, dcache } = &level.cache {
        if icache != dcache {
            report.push(Diagnostic::new(
                RuleId::SplitImbalance,
                format!("{who}: split I and D halves have different organisations"),
                map.level_section(i),
            ));
        }
    }

    // MLC011: the paper matches L1 to the CPU cycle.
    if i == 0 && level.read_cycles != 1 {
        report.push(Diagnostic::new(
            RuleId::L1Cycle,
            format!(
                "{who}: first-level read takes {} cycles; the paper's L1 \
                 is matched to the CPU at 1 cycle",
                level.read_cycles,
            ),
            map.level_key_or_section(i, "cycles"),
        ));
    }

    // MLC012: write hits cost two level cycles in the paper; a write
    // faster than a read usually means swapped fields.
    if level.write_cycles < level.read_cycles {
        report.push(Diagnostic::new(
            RuleId::WriteCycleInversion,
            format!(
                "{who}: write hits ({} cycles) are faster than read hits ({} cycles)",
                level.write_cycles, level.read_cycles,
            ),
            map.level_key_or_section(i, "write_cycles"),
        ));
    }

    // MLC016: the static must/may analysis models LRU only; any other
    // policy in an associative cache forfeits guaranteed bounds.
    for (side, cache) in units(&level.cache) {
        if cache.geometry().ways() > 1 && cache.replacement() != Replacement::Lru {
            report.push(Diagnostic::new(
                RuleId::ReplacementUnsupported,
                format!(
                    "{who}{}: {} replacement has no static must/may analysis; \
                     set `replacement = lru` to enable guaranteed bounds",
                    side_label(side),
                    cache.replacement(),
                ),
                map.level_key_or_section(i, "replacement"),
            ));
        }
    }

    // MLC017: write policies that push traffic downstream (or skip the
    // fill) widen the static bounds below L1.
    for (side, cache) in units(&level.cache) {
        if cache.write_policy() == WritePolicy::WriteThrough {
            report.push(Diagnostic::new(
                RuleId::WritePolicyWidening,
                format!(
                    "{who}{}: write-through stores reach the next level on every \
                     write, widening that level's static miss bounds",
                    side_label(side),
                ),
                map.level_key_or_section(i, "write_policy"),
            ));
        }
        if cache.alloc_policy() == AllocPolicy::NoWriteAllocate {
            report.push(Diagnostic::new(
                RuleId::WritePolicyWidening,
                format!(
                    "{who}{}: no-write-allocate writes bypass the modeled fill \
                     path; the static analysis cannot bound this cache",
                    side_label(side),
                ),
                map.level_key_or_section(i, "alloc"),
            ));
        }
    }
}

/// `" I-cache"` / `" D-cache"` suffix for split halves, empty otherwise.
fn side_label(side: &str) -> String {
    if side.is_empty() {
        String::new()
    } else {
        format!(" {side}-cache")
    }
}

/// Rules over adjacent levels; `i` indexes the upstream level.
fn lint_adjacent(
    i: usize,
    up: &LevelConfig,
    down: &LevelConfig,
    map: &SourceMap,
    report: &mut Report,
) {
    let di = i + 1;
    let up_bytes = up.cache.total_bytes();
    let down_bytes = down.cache.total_bytes();
    let up_who = describe(i, up);
    let down_who = describe(di, down);

    // MLC001 / MLC002: multilevel inclusion needs each level to hold
    // everything above it, and the paper's performance-optimal
    // hierarchies keep generous size ratios.
    if down_bytes < up_bytes {
        report.push(Diagnostic::new(
            RuleId::CapacityInclusion,
            format!(
                "{down_who} capacity {} is smaller than {up_who} capacity {}; \
                 multilevel inclusion is infeasible",
                size(down_bytes),
                size(up_bytes),
            ),
            map.level_key_or_section(di, "size"),
        ));
    } else if down_bytes < 4 * up_bytes {
        report.push(Diagnostic::new(
            RuleId::CapacityRatio,
            format!(
                "{down_who} capacity {} is less than 4x {up_who} capacity {}; \
                 a level this close in size rarely pays for its latency",
                size(down_bytes),
                size(up_bytes),
            ),
            map.level_key_or_section(di, "size"),
        ));
    }

    // MLC003: block sizes must not shrink downstream, or a downstream
    // fill cannot cover an upstream block.
    if min_block(&down.cache) < max_block(&up.cache) {
        report.push(Diagnostic::new(
            RuleId::BlockMonotonic,
            format!(
                "{down_who} block size {} bytes is smaller than {up_who} block \
                 size {} bytes",
                min_block(&down.cache),
                max_block(&up.cache),
            ),
            map.level_key_or_section(di, "block"),
        ));
    }

    // MLC004 / MLC005: each level trades speed for size going down.
    if down.read_cycles < up.read_cycles {
        report.push(Diagnostic::new(
            RuleId::CycleMonotonic,
            format!(
                "{down_who} cycle time ({} cycles) is faster than {up_who} \
                 ({} cycles); levels must slow down going downstream",
                down.read_cycles, up.read_cycles,
            ),
            map.level_key_or_section(di, "cycles"),
        ));
    } else if down.read_cycles == up.read_cycles {
        report.push(Diagnostic::new(
            RuleId::CycleFlat,
            format!(
                "{down_who} has the same cycle time as {up_who} ({} cycles); \
                 it adds latency without being a faster resource",
                down.read_cycles,
            ),
            map.level_key_or_section(di, "cycles"),
        ));
    }

    // MLC014: two identical adjacent levels are a degenerate sweep point.
    if up.cache == down.cache && up.read_cycles == down.read_cycles {
        report.push(Diagnostic::new(
            RuleId::DuplicateLevel,
            format!("{down_who} is configured identically to {up_who}"),
            map.level_section(di),
        ));
    }
}

/// MLC015: residual problems caught by the simulator's own validation
/// (zero cycle counts, empty hierarchies, bad memory timings, ...).
fn lint_validation(config: &HierarchyConfig, map: &SourceMap, report: &mut Report) {
    if let Err(e) = config.validate() {
        let message = e.to_string();
        // Validation messages name the offending level as "level {i}
        // ({name})"; recover a span from that when possible.
        let span = (0..config.levels.len())
            .find(|i| message.contains(&format!("level {i} ")))
            .and_then(|i| map.level_section(i));
        report.push(Diagnostic::new(RuleId::ConfigInvalid, message, span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::ByteSize;
    use mlc_sim::machine::{base_machine, BaseMachine};
    use mlc_sim::{CpuConfig, MemoryConfig};

    fn cache(bytes: u64, block: u64) -> CacheConfig {
        CacheConfig::builder()
            .total(ByteSize::new(bytes))
            .block_bytes(block)
            .build()
            .unwrap()
    }

    fn rules_fired(report: &Report) -> Vec<RuleId> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn base_machine_is_clean() {
        let report = lint(&base_machine(), &SourceMap::new());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn shrinking_capacity_is_an_inclusion_error() {
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(cache(2048, 32));
        let report = lint(&config, &SourceMap::new());
        assert!(rules_fired(&report).contains(&RuleId::CapacityInclusion));
        assert!(report.has_errors());
    }

    #[test]
    fn close_capacity_is_a_ratio_warning() {
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(cache(8192, 32));
        let report = lint(&config, &SourceMap::new());
        let fired = rules_fired(&report);
        assert!(fired.contains(&RuleId::CapacityRatio), "{fired:?}");
        assert!(!fired.contains(&RuleId::CapacityInclusion));
    }

    #[test]
    fn shrinking_block_fires() {
        let mut config = base_machine();
        // L1 blocks are 16 bytes; an 8-byte L2 block shrinks downstream.
        config.levels[1].cache = LevelCacheConfig::Unified(cache(512 << 10, 8));
        let report = lint(&config, &SourceMap::new());
        assert!(rules_fired(&report).contains(&RuleId::BlockMonotonic));
    }

    #[test]
    fn cycle_inversion_and_flatness_fire() {
        let mut config = base_machine();
        config.levels[1].read_cycles = 1;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::CycleFlat), "{fired:?}");

        let mut config = base_machine();
        config.levels[0].read_cycles = 3;
        config.levels[0].write_cycles = 6;
        config.levels[1].read_cycles = 2;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::CycleMonotonic), "{fired:?}");
    }

    #[test]
    fn non_lru_replacement_fires_mlc016() {
        let assoc = CacheConfig::builder()
            .total(ByteSize::kib(512))
            .block_bytes(32)
            .ways(4)
            .replacement(Replacement::Random)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(assoc);
        let report = lint(&config, &SourceMap::new());
        let fired = rules_fired(&report);
        assert!(fired.contains(&RuleId::ReplacementUnsupported), "{fired:?}");
        // Advice only: the simulator handles it fine.
        assert!(!report.has_errors());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::ReplacementUnsupported)
            .unwrap();
        assert!(d.message.contains("replacement = lru"), "{}", d.message);
    }

    #[test]
    fn direct_mapped_non_lru_label_is_not_flagged() {
        // A direct-mapped cache has no replacement decision to make.
        let dm = CacheConfig::builder()
            .total(ByteSize::kib(512))
            .block_bytes(32)
            .ways(1)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(dm);
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(
            !fired.contains(&RuleId::ReplacementUnsupported),
            "{fired:?}"
        );
    }

    #[test]
    fn write_through_and_no_allocate_fire_mlc017() {
        let wt = CacheConfig::builder()
            .total(ByteSize::kib(512))
            .block_bytes(32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(wt);
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::WritePolicyWidening), "{fired:?}");

        let nwa = CacheConfig::builder()
            .total(ByteSize::kib(512))
            .block_bytes(32)
            .alloc_policy(AllocPolicy::NoWriteAllocate)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[1].cache = LevelCacheConfig::Unified(nwa);
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::WritePolicyWidening), "{fired:?}");
    }

    #[test]
    fn sub_blocking_fires_fetch_unit() {
        let sub = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(32)
            .sub_blocks(4)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[0].cache = LevelCacheConfig::Unified(sub);
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::FetchUnit), "{fired:?}");
    }

    #[test]
    fn shallow_write_through_buffer_fires() {
        let wt = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels[0].cache = LevelCacheConfig::Unified(wt);
        config.levels[0].write_buffer_entries = 1;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::WriteBufferDepth), "{fired:?}");
    }

    #[test]
    fn wide_and_non_pow2_buses_fire() {
        let mut config = base_machine();
        config.levels[0].refill_bus_bytes = 32; // L1 blocks are 16 bytes
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::BusWiderThanBlock), "{fired:?}");

        let mut config = base_machine();
        config.levels[0].refill_bus_bytes = 12;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::BusPowerOfTwo), "{fired:?}");
        // validate() also rejects this, so MLC015 rides along.
        assert!(fired.contains(&RuleId::ConfigInvalid), "{fired:?}");
    }

    #[test]
    fn memory_speed_level_is_degenerate() {
        let mut config = base_machine();
        config.levels[1].read_cycles = 18; // 18 x 10 ns = memory's 180 ns
        config.levels[1].write_cycles = 36;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::DegenerateLevel), "{fired:?}");
    }

    #[test]
    fn unequal_split_halves_are_advice() {
        let mut config = base_machine();
        config.levels[0].cache = LevelCacheConfig::Split {
            icache: cache(2048, 16),
            dcache: cache(4096, 16),
        };
        let report = lint(&config, &SourceMap::new());
        let fired = rules_fired(&report);
        assert!(fired.contains(&RuleId::SplitImbalance), "{fired:?}");
        assert_eq!(report.advice_count(), 1);
    }

    #[test]
    fn slow_l1_is_advice() {
        let config = BaseMachine::new().build().unwrap();
        let mut config = config;
        config.levels[0].read_cycles = 2;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::L1Cycle), "{fired:?}");
    }

    #[test]
    fn write_faster_than_read_fires() {
        let mut config = base_machine();
        config.levels[1].write_cycles = 1;
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::WriteCycleInversion), "{fired:?}");
    }

    #[test]
    fn duplicate_adjacent_levels_fire() {
        let c = cache(512 << 10, 32);
        let config = HierarchyConfig {
            cpu: CpuConfig::default(),
            levels: vec![
                LevelConfig::new("A", LevelCacheConfig::Unified(c), 3),
                LevelConfig::new("B", LevelCacheConfig::Unified(c), 3),
            ],
            memory: MemoryConfig::default(),
        };
        let fired = rules_fired(&lint(&config, &SourceMap::new()));
        assert!(fired.contains(&RuleId::DuplicateLevel), "{fired:?}");
        assert!(fired.contains(&RuleId::CycleFlat), "{fired:?}");
        assert!(fired.contains(&RuleId::CapacityRatio), "{fired:?}");
    }

    #[test]
    fn validation_failure_maps_to_config_invalid() {
        let mut config = base_machine();
        config.levels[1].write_buffer_entries = 0;
        let report = lint(&config, &SourceMap::new());
        let hit = report
            .diagnostics
            .iter()
            .find(|d| d.rule == RuleId::ConfigInvalid)
            .expect("MLC015 fires");
        assert!(
            hit.message.contains("write_buffer_entries"),
            "{}",
            hit.message
        );
    }
}
