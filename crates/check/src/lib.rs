//! `mlc-check`: static hierarchy linting and runtime invariant checking.
//!
//! The paper's methodology only sweeps *well-formed* hierarchies: its
//! Section 2 assumptions — multilevel inclusion, block-size and
//! cycle-time monotonicity down the hierarchy, fetch size at least the
//! block size — are preconditions of its Equation 1. This crate makes
//! those assumptions first-class:
//!
//! * **Static linter** ([`lint`]): analyzes a
//!   [`mlc_sim::HierarchyConfig`] *before* any cycle is simulated and
//!   reports violations as [`Diagnostic`]s with stable rule codes
//!   (`MLC001`...), [`Severity`] levels, machine-file line [`Span`]s (via
//!   [`SourceMap`]), and human or JSON rendering. See [`ALL_RULES`] for
//!   the catalog.
//! * **Runtime invariant checker**: the `check-invariants` cargo feature
//!   (forwarded to `mlc-cache` and `mlc-sim`) instruments the simulator
//!   with cheap per-access assertions — tag uniqueness within a set,
//!   replacement-stamp well-formedness, dirty-lines-imply-write-back,
//!   demand-fill inclusion, and simulated-clock monotonicity — that
//!   panic with the violating trace-record index and a hierarchy state
//!   summary.
//!
//! ```
//! use mlc_cache::{ByteSize, CacheConfig};
//! use mlc_check::{lint, RuleId, SourceMap};
//! use mlc_sim::machine::base_machine;
//! use mlc_sim::LevelCacheConfig;
//!
//! // The paper's base machine is well-formed...
//! let mut config = base_machine();
//! assert!(lint(&config, &SourceMap::new()).is_clean());
//!
//! // ...but shrinking L2 below the 4KB L1 breaks multilevel inclusion.
//! let tiny = CacheConfig::builder()
//!     .total(ByteSize::kib(2))
//!     .block_bytes(32)
//!     .build()?;
//! config.levels[1].cache = LevelCacheConfig::Unified(tiny);
//! let report = lint(&config, &SourceMap::new());
//! assert!(report
//!     .diagnostics
//!     .iter()
//!     .any(|d| d.rule == RuleId::CapacityInclusion));
//! # Ok::<(), mlc_cache::ConfigError>(())
//! ```

pub mod diag;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Report, RuleId, Severity, Span, ALL_RULES};
pub use rules::lint;
pub use source::SourceMap;
