//! Diagnostics: severities, source spans, rule identities, and reports.
//!
//! Every problem the linter can describe is a [`Diagnostic`]: a stable
//! rule identity ([`RuleId`]), a [`Severity`], a human-readable message,
//! and — when the configuration came from a machine description file —
//! the [`Span`] of lines that caused it. A [`Report`] collects the
//! diagnostics for one configuration and renders them for humans or as
//! JSON for tooling.

use std::fmt;

/// How serious a diagnostic is.
///
/// Ordered so that `Advice < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or paper-conformance guidance; never fails a run.
    Advice,
    /// Likely mistake; fails a run only under `--deny-warnings`.
    Warning,
    /// The configuration violates a precondition of the paper's model.
    Error,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An inclusive, 1-based range of lines in a machine description file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First line of the span (1-based).
    pub start: u32,
    /// Last line of the span (inclusive).
    pub end: u32,
}

impl Span {
    /// A single-line span.
    pub fn line(line: u32) -> Self {
        Span {
            start: line,
            end: line,
        }
    }

    /// A multi-line span; `start` and `end` are swapped if reversed.
    pub fn lines(start: u32, end: u32) -> Self {
        Span {
            start: start.min(end),
            end: start.max(end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "line {}", self.start)
        } else {
            write!(f, "lines {}-{}", self.start, self.end)
        }
    }
}

/// Stable identity of a lint rule.
///
/// The numeric codes are part of the tool's interface: scripts match on
/// them, so existing codes must never be renumbered or reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `MLC000` — the machine description could not be parsed.
    ParseError,
    /// `MLC001` — a downstream level is smaller than the one above it.
    CapacityInclusion,
    /// `MLC002` — adjacent levels are too close in size to help.
    CapacityRatio,
    /// `MLC003` — block size shrinks going downstream.
    BlockMonotonic,
    /// `MLC004` — a downstream level is faster than the one above it.
    CycleMonotonic,
    /// `MLC005` — adjacent levels have identical cycle times.
    CycleFlat,
    /// `MLC006` — sub-blocking makes the fetch unit smaller than a block.
    FetchUnit,
    /// `MLC007` — a write-through level with a shallow write buffer.
    WriteBufferDepth,
    /// `MLC008` — refill bus wider than the level's block.
    BusWiderThanBlock,
    /// `MLC009` — a cache level no faster than main memory.
    DegenerateLevel,
    /// `MLC010` — split halves with different organisations.
    SplitImbalance,
    /// `MLC011` — first level not matched to the CPU cycle.
    L1Cycle,
    /// `MLC012` — write hits faster than read hits.
    WriteCycleInversion,
    /// `MLC013` — refill bus width is not a power of two.
    BusPowerOfTwo,
    /// `MLC014` — two adjacent levels are configured identically.
    DuplicateLevel,
    /// `MLC015` — the configuration fails basic validation.
    ConfigInvalid,
    /// `MLC016` — replacement policy unsupported by static analysis.
    ReplacementUnsupported,
    /// `MLC017` — write policy interactions widen static bounds.
    WritePolicyWidening,
    /// `MLC020` — measured misses escaped the static `[lo, hi]` bounds.
    BoundsViolation,
    /// `MLC021` — static bounds so wide they carry no information.
    BoundsVacuous,
}

/// Every rule the linter knows, in code order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::ParseError,
    RuleId::CapacityInclusion,
    RuleId::CapacityRatio,
    RuleId::BlockMonotonic,
    RuleId::CycleMonotonic,
    RuleId::CycleFlat,
    RuleId::FetchUnit,
    RuleId::WriteBufferDepth,
    RuleId::BusWiderThanBlock,
    RuleId::DegenerateLevel,
    RuleId::SplitImbalance,
    RuleId::L1Cycle,
    RuleId::WriteCycleInversion,
    RuleId::BusPowerOfTwo,
    RuleId::DuplicateLevel,
    RuleId::ConfigInvalid,
    RuleId::ReplacementUnsupported,
    RuleId::WritePolicyWidening,
    RuleId::BoundsViolation,
    RuleId::BoundsVacuous,
];

impl RuleId {
    /// The stable code, e.g. `"MLC001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::ParseError => "MLC000",
            RuleId::CapacityInclusion => "MLC001",
            RuleId::CapacityRatio => "MLC002",
            RuleId::BlockMonotonic => "MLC003",
            RuleId::CycleMonotonic => "MLC004",
            RuleId::CycleFlat => "MLC005",
            RuleId::FetchUnit => "MLC006",
            RuleId::WriteBufferDepth => "MLC007",
            RuleId::BusWiderThanBlock => "MLC008",
            RuleId::DegenerateLevel => "MLC009",
            RuleId::SplitImbalance => "MLC010",
            RuleId::L1Cycle => "MLC011",
            RuleId::WriteCycleInversion => "MLC012",
            RuleId::BusPowerOfTwo => "MLC013",
            RuleId::DuplicateLevel => "MLC014",
            RuleId::ConfigInvalid => "MLC015",
            RuleId::ReplacementUnsupported => "MLC016",
            RuleId::WritePolicyWidening => "MLC017",
            RuleId::BoundsViolation => "MLC020",
            RuleId::BoundsVacuous => "MLC021",
        }
    }

    /// Short kebab-case name, e.g. `"capacity-inclusion"`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ParseError => "parse-error",
            RuleId::CapacityInclusion => "capacity-inclusion",
            RuleId::CapacityRatio => "capacity-ratio",
            RuleId::BlockMonotonic => "block-monotonic",
            RuleId::CycleMonotonic => "cycle-monotonic",
            RuleId::CycleFlat => "cycle-flat",
            RuleId::FetchUnit => "fetch-unit",
            RuleId::WriteBufferDepth => "write-buffer-depth",
            RuleId::BusWiderThanBlock => "bus-wider-than-block",
            RuleId::DegenerateLevel => "degenerate-level",
            RuleId::SplitImbalance => "split-imbalance",
            RuleId::L1Cycle => "l1-cycle",
            RuleId::WriteCycleInversion => "write-cycle-inversion",
            RuleId::BusPowerOfTwo => "bus-power-of-two",
            RuleId::DuplicateLevel => "duplicate-level",
            RuleId::ConfigInvalid => "config-invalid",
            RuleId::ReplacementUnsupported => "replacement-unsupported",
            RuleId::WritePolicyWidening => "write-policy-widening",
            RuleId::BoundsViolation => "bounds-violation",
            RuleId::BoundsVacuous => "bounds-vacuous",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::ParseError
            | RuleId::CapacityInclusion
            | RuleId::BlockMonotonic
            | RuleId::CycleMonotonic
            | RuleId::DegenerateLevel
            | RuleId::BusPowerOfTwo
            | RuleId::ConfigInvalid => Severity::Error,
            RuleId::CapacityRatio
            | RuleId::CycleFlat
            | RuleId::FetchUnit
            | RuleId::WriteBufferDepth
            | RuleId::BusWiderThanBlock
            | RuleId::WriteCycleInversion
            | RuleId::DuplicateLevel => Severity::Warning,
            RuleId::SplitImbalance
            | RuleId::L1Cycle
            | RuleId::ReplacementUnsupported
            | RuleId::WritePolicyWidening
            | RuleId::BoundsVacuous => Severity::Advice,
            RuleId::BoundsViolation => Severity::Error,
        }
    }

    /// One-line description of what the rule checks, for `--explain`-style
    /// listings and the README catalog.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::ParseError => "the machine description file could not be parsed",
            RuleId::CapacityInclusion => {
                "each level must be at least as large as the level above it"
            }
            RuleId::CapacityRatio => {
                "adjacent levels should differ in size by at least 4x to be effective"
            }
            RuleId::BlockMonotonic => "block size must not shrink going downstream",
            RuleId::CycleMonotonic => "cycle time must not shrink going downstream",
            RuleId::CycleFlat => "a level as fast as the one above it adds latency for nothing",
            RuleId::FetchUnit => "sub-blocking fetches less than a block per miss",
            RuleId::WriteBufferDepth => {
                "write-through levels need a write buffer deep enough to hide store traffic"
            }
            RuleId::BusWiderThanBlock => "refill bus wider than the block it transfers",
            RuleId::DegenerateLevel => "a cache level no faster than main memory cannot help",
            RuleId::SplitImbalance => "split I/D halves usually share one organisation",
            RuleId::L1Cycle => "the first level is normally matched to the CPU cycle time",
            RuleId::WriteCycleInversion => "write hits should not be faster than read hits",
            RuleId::BusPowerOfTwo => "refill bus width must be a power of two",
            RuleId::DuplicateLevel => "two identically configured adjacent levels are redundant",
            RuleId::ConfigInvalid => "the configuration fails basic hierarchy validation",
            RuleId::ReplacementUnsupported => {
                "non-LRU replacement keeps static must/may analysis from bounding misses"
            }
            RuleId::WritePolicyWidening => {
                "write-through or no-write-allocate traffic widens static miss bounds"
            }
            RuleId::BoundsViolation => {
                "simulated misses fell outside the statically guaranteed bounds"
            }
            RuleId::BoundsVacuous => {
                "the static bounds span every possible outcome and carry no information"
            }
        }
    }

    /// Which assumption of the source paper the rule encodes, if any.
    pub fn paper_note(self) -> &'static str {
        match self {
            RuleId::ParseError => "",
            RuleId::CapacityInclusion => "multilevel inclusion, paper section 2",
            RuleId::CapacityRatio => "size ratios of performance-optimal hierarchies, section 5",
            RuleId::BlockMonotonic => "block-size monotonicity, section 2",
            RuleId::CycleMonotonic => "speed-size tradeoff down the hierarchy, section 2",
            RuleId::CycleFlat => "each level trades speed for size, section 2",
            RuleId::FetchUnit => "fetch size >= block size precondition of equation 1",
            RuleId::WriteBufferDepth => "four-entry write buffers of the base machine, section 2",
            RuleId::BusWiderThanBlock => "four-word inter-level buses, section 2",
            RuleId::DegenerateLevel => "a level must beat memory to reduce average access time",
            RuleId::SplitImbalance => "the base machine's equal 2KB I/D halves, section 2",
            RuleId::L1Cycle => "L1 cycle time matched to the CPU, section 2",
            RuleId::WriteCycleInversion => "write hits take two level cycles, section 2",
            RuleId::BusPowerOfTwo => "",
            RuleId::DuplicateLevel => "degenerate design-space points add no information",
            RuleId::ConfigInvalid => "",
            RuleId::ReplacementUnsupported => "LRU replacement of the base machine, section 2",
            RuleId::WritePolicyWidening => "write-back with write-allocate, section 2",
            RuleId::BoundsViolation => "",
            RuleId::BoundsVacuous => "",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a rule, where it fired, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule produced this finding.
    pub rule: RuleId,
    /// Severity (normally the rule's default).
    pub severity: Severity,
    /// Human-readable explanation, specific to this configuration.
    pub message: String,
    /// Lines of the machine file responsible, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic at the rule's default severity.
    pub fn new(rule: RuleId, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity(),
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule.code())?;
        if let Some(span) = self.span {
            write!(f, " {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// All diagnostics produced for one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in rule order then hierarchy order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// A report with no findings.
    pub fn clean() -> Self {
        Report::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// True when nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of advice-severity findings.
    pub fn advice_count(&self) -> usize {
        self.count(Severity::Advice)
    }

    /// True when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The most severe finding, or `None` for a clean report.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether the report should fail the run: errors always do;
    /// warnings do under `deny_warnings`.
    pub fn should_fail(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.warning_count() > 0)
    }

    /// Renders the report for a terminal: one line per finding plus a
    /// summary line.
    pub fn render_human(&self, source_name: &str) -> String {
        use std::fmt::Write;

        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{source_name}: {d}");
        }
        let _ = writeln!(
            out,
            "{source_name}: {} error(s), {} warning(s), {} advice",
            self.error_count(),
            self.warning_count(),
            self.advice_count(),
        );
        out
    }

    /// Renders the report as a JSON object for tooling.
    ///
    /// Schema: `{"source": str, "errors": n, "warnings": n, "advice": n,
    /// "diagnostics": [{"rule", "name", "severity", "message",
    /// "span": {"start", "end"} | null}]}`.
    pub fn render_json(&self, source_name: &str) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"source\":{}", json_string(source_name)));
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"advice\":{}",
            self.error_count(),
            self.warning_count(),
            self.advice_count()
        ));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"name\":{},\"severity\":{},\"message\":{},\"span\":",
                json_string(d.rule.code()),
                json_string(d.rule.name()),
                json_string(d.severity.label()),
                json_string(&d.message),
            ));
            match d.span {
                Some(s) => out.push_str(&format!("{{\"start\":{},\"end\":{}}}", s.start, s.end)),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Advice < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = ALL_RULES.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate rule codes");
        assert_eq!(RuleId::CapacityInclusion.code(), "MLC001");
        assert_eq!(RuleId::ConfigInvalid.code(), "MLC015");
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::line(7).to_string(), "line 7");
        assert_eq!(Span::lines(9, 3).to_string(), "lines 3-9");
    }

    #[test]
    fn report_counts_and_failure_policy() {
        let mut r = Report::clean();
        assert!(r.is_clean());
        assert!(!r.should_fail(true));
        r.push(Diagnostic::new(RuleId::CapacityRatio, "close sizes", None));
        assert_eq!(r.warning_count(), 1);
        assert!(!r.should_fail(false));
        assert!(r.should_fail(true));
        r.push(Diagnostic::new(
            RuleId::CapacityInclusion,
            "shrinking",
            Some(Span::line(4)),
        ));
        assert!(r.has_errors());
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(r.should_fail(false));
    }

    #[test]
    fn human_rendering_includes_code_and_span() {
        let mut r = Report::clean();
        r.push(Diagnostic::new(
            RuleId::BlockMonotonic,
            "block shrinks",
            Some(Span::line(12)),
        ));
        let text = r.render_human("m.mlc");
        assert!(
            text.contains("m.mlc: error[MLC003] line 12: block shrinks"),
            "{text}"
        );
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut r = Report::clean();
        r.push(Diagnostic::new(
            RuleId::CycleFlat,
            "say \"no\"\nplease",
            Some(Span::lines(2, 5)),
        ));
        let json = r.render_json("a\\b.mlc");
        assert!(json.contains("\"rule\":\"MLC005\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
        assert!(json.contains("\\\"no\\\"\\n"), "{json}");
        assert!(json.contains("\"span\":{\"start\":2,\"end\":5}"), "{json}");
        assert!(json.contains("\"source\":\"a\\\\b.mlc\""), "{json}");
    }
}
