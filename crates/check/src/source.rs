//! Mapping from hierarchy-configuration landmarks back to machine-file
//! lines.
//!
//! The linter analyzes a [`mlc_sim::HierarchyConfig`], which carries no
//! notion of where each value came from. When the configuration was
//! parsed from a machine description file, the parser records a
//! [`SourceMap`] alongside it so that diagnostics can point at the
//! offending `key = value` line (or at the `[level ...]` section when a
//! defaulted value is at fault).

use crate::diag::Span;

/// Line information for one `[level ...]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LevelSpans {
    header: u32,
    last_line: u32,
    keys: Vec<(String, u32)>,
}

/// Line information for a whole machine description file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    levels: Vec<LevelSpans>,
    memory: Vec<(String, u32)>,
    memory_header: Option<u32>,
    cpu: Vec<(String, u32)>,
}

impl SourceMap {
    /// An empty map (configuration built in code, not parsed).
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Records the start of a `[level ...]` section at `line`.
    pub fn begin_level(&mut self, line: u32) {
        self.levels.push(LevelSpans {
            header: line,
            last_line: line,
            keys: Vec::new(),
        });
    }

    /// Records a `key = value` line in the most recent level section.
    pub fn record_level_key(&mut self, key: &str, line: u32) {
        if let Some(level) = self.levels.last_mut() {
            level.keys.push((key.to_string(), line));
            level.last_line = level.last_line.max(line);
        }
    }

    /// Records the `[memory]` header line.
    pub fn begin_memory(&mut self, line: u32) {
        self.memory_header = Some(line);
    }

    /// Records a `key = value` line in the `[memory]` section.
    pub fn record_memory_key(&mut self, key: &str, line: u32) {
        self.memory.push((key.to_string(), line));
    }

    /// Records a top-level `cpu.*` line.
    pub fn record_cpu_key(&mut self, key: &str, line: u32) {
        self.cpu.push((key.to_string(), line));
    }

    /// Number of level sections recorded.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The line of `key` in level `i`'s section, if it was written out.
    pub fn level_key(&self, i: usize, key: &str) -> Option<Span> {
        let level = self.levels.get(i)?;
        level
            .keys
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, line)| Span::line(line))
    }

    /// The whole section span of level `i`: header through last key.
    pub fn level_section(&self, i: usize) -> Option<Span> {
        let level = self.levels.get(i)?;
        Some(Span::lines(level.header, level.last_line))
    }

    /// The line of `key` in level `i`, falling back to the section span
    /// when the key was left to its default.
    pub fn level_key_or_section(&self, i: usize, key: &str) -> Option<Span> {
        self.level_key(i, key).or_else(|| self.level_section(i))
    }

    /// The line of a `[memory]` key, falling back to the section header.
    pub fn memory_key(&self, key: &str) -> Option<Span> {
        self.memory
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, line)| Span::line(line))
            .or(self.memory_header.map(Span::line))
    }

    /// The line of a top-level `cpu.*` key.
    pub fn cpu_key(&self, key: &str) -> Option<Span> {
        self.cpu
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, line)| Span::line(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_resolve_to_recorded_lines() {
        let mut map = SourceMap::new();
        map.record_cpu_key("cpu.cycle_ns", 1);
        map.begin_level(3);
        map.record_level_key("size", 4);
        map.record_level_key("cycles", 6);
        map.begin_level(8);
        map.record_level_key("size", 9);
        map.begin_memory(11);
        map.record_memory_key("read_ns", 12);

        assert_eq!(map.level_count(), 2);
        assert_eq!(map.cpu_key("cpu.cycle_ns"), Some(Span::line(1)));
        assert_eq!(map.level_key(0, "size"), Some(Span::line(4)));
        assert_eq!(map.level_key(1, "size"), Some(Span::line(9)));
        assert_eq!(map.level_section(0), Some(Span::lines(3, 6)));
        // Defaulted key falls back to the section span.
        assert_eq!(
            map.level_key_or_section(0, "block"),
            Some(Span::lines(3, 6))
        );
        assert_eq!(map.level_key_or_section(0, "cycles"), Some(Span::line(6)));
        assert_eq!(map.memory_key("read_ns"), Some(Span::line(12)));
        // Unknown memory key falls back to the header.
        assert_eq!(map.memory_key("gap_ns"), Some(Span::line(11)));
        assert_eq!(map.level_key(5, "size"), None);
    }

    #[test]
    fn empty_map_resolves_nothing() {
        let map = SourceMap::new();
        assert_eq!(map.level_key(0, "size"), None);
        assert_eq!(map.level_section(0), None);
        assert_eq!(map.memory_key("read_ns"), None);
        assert_eq!(map.cpu_key("cpu.cycle_ns"), None);
    }
}
