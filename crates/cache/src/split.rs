//! Split instruction/data caches and the [`CacheUnit`] abstraction used by
//! hierarchy levels.

use mlc_trace::{AccessKind, Address};

use crate::cache::{AccessResult, Cache};
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// A split first-level cache: separate instruction and data caches, as in
/// the base machine's on-chip 2 KB + 2 KB pair.
///
/// Instruction fetches go to the I-cache; loads and stores go to the
/// D-cache.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig, SplitCache};
/// use mlc_trace::{AccessKind, Address};
///
/// let half = CacheConfig::builder()
///     .total(ByteSize::kib(2))
///     .block_bytes(16)
///     .build()?;
/// let mut l1 = SplitCache::new(half, half);
/// l1.access(Address::new(0x0), AccessKind::InstructionFetch);
/// l1.access(Address::new(0x0), AccessKind::Read);
/// // The two sides are independent: both accesses were cold misses.
/// assert_eq!(l1.stats().read_misses(), 2);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SplitCache {
    icache: Cache,
    dcache: Cache,
}

impl SplitCache {
    /// Creates a split cache from the two halves' configurations.
    pub fn new(iconfig: CacheConfig, dconfig: CacheConfig) -> Self {
        SplitCache {
            icache: Cache::new(iconfig),
            dcache: Cache::new(dconfig),
        }
    }

    /// The instruction cache.
    pub fn icache(&self) -> &Cache {
        &self.icache
    }

    /// The data cache.
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// Routes an access to the appropriate half.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessResult {
        if kind.is_data() {
            self.dcache.access(addr, kind)
        } else {
            self.icache.access(addr, kind)
        }
    }

    /// Routes a hit-only probe (see [`Cache::access_hit`]).
    #[inline]
    pub fn access_hit(&mut self, addr: Address, kind: AccessKind) -> Option<bool> {
        if kind.is_data() {
            self.dcache.access_hit(addr, kind)
        } else {
            self.icache.access_hit(addr, kind)
        }
    }

    /// Combined capacity of both halves, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.icache.geometry().total_bytes() + self.dcache.geometry().total_bytes()
    }

    /// Combined statistics of both halves.
    pub fn stats(&self) -> CacheStats {
        *self.icache.stats() + *self.dcache.stats()
    }

    /// Resets both halves' statistics, preserving contents.
    pub fn reset_stats(&mut self) {
        self.icache.reset_stats();
        self.dcache.reset_stats();
    }

    /// Drains dirty blocks from both halves (the I-cache never holds
    /// dirty data under normal use, but is drained for completeness).
    pub fn flush_dirty(&mut self) -> Vec<Address> {
        let mut out = self.icache.flush_dirty();
        out.extend(self.dcache.flush_dirty());
        out
    }
}

/// One hierarchy level's cache: either unified or split I/D.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig, CacheUnit};
/// use mlc_trace::{AccessKind, Address};
///
/// let config = CacheConfig::builder().total(ByteSize::kib(8)).build()?;
/// let mut unit = CacheUnit::unified(config);
/// assert!(!unit.access(Address::new(0x40), AccessKind::Read).hit);
/// assert_eq!(unit.total_bytes(), 8192);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
// A split unit is roughly twice a unified one; both are a few hundred
// bytes of headers over heap-allocated arrays, and exactly one CacheUnit
// exists per hierarchy level, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum CacheUnit {
    /// A single cache serving all reference kinds.
    Unified(Cache),
    /// Separate instruction and data caches.
    Split(SplitCache),
}

impl CacheUnit {
    /// Creates a unified unit.
    pub fn unified(config: CacheConfig) -> Self {
        CacheUnit::Unified(Cache::new(config))
    }

    /// Creates a split unit.
    pub fn split(iconfig: CacheConfig, dconfig: CacheConfig) -> Self {
        CacheUnit::Split(SplitCache::new(iconfig, dconfig))
    }

    /// Routes an access.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessResult {
        match self {
            CacheUnit::Unified(c) => c.access(addr, kind),
            CacheUnit::Split(s) => s.access(addr, kind),
        }
    }

    /// Routes a hit-only probe (see [`Cache::access_hit`]).
    #[inline]
    pub fn access_hit(&mut self, addr: Address, kind: AccessKind) -> Option<bool> {
        match self {
            CacheUnit::Unified(c) => c.access_hit(addr, kind),
            CacheUnit::Split(s) => s.access_hit(addr, kind),
        }
    }

    /// Total capacity in bytes (both halves for a split unit).
    pub fn total_bytes(&self) -> u64 {
        match self {
            CacheUnit::Unified(c) => c.geometry().total_bytes(),
            CacheUnit::Split(s) => s.total_bytes(),
        }
    }

    /// The block size, in bytes, of the sub-cache that serves `kind`.
    ///
    /// This is the transfer unit for misses of that kind, and the width of
    /// a write-buffer entry for victims evicted by them.
    pub fn block_bytes_for(&self, kind: AccessKind) -> u64 {
        match self {
            CacheUnit::Unified(c) => c.geometry().block_bytes(),
            CacheUnit::Split(s) => {
                if kind.is_data() {
                    s.dcache().geometry().block_bytes()
                } else {
                    s.icache().geometry().block_bytes()
                }
            }
        }
    }

    /// Combined statistics.
    pub fn stats(&self) -> CacheStats {
        match self {
            CacheUnit::Unified(c) => *c.stats(),
            CacheUnit::Split(s) => s.stats(),
        }
    }

    /// Resets statistics, preserving contents.
    pub fn reset_stats(&mut self) {
        match self {
            CacheUnit::Unified(c) => c.reset_stats(),
            CacheUnit::Split(s) => s.reset_stats(),
        }
    }

    /// Drains all dirty blocks.
    pub fn flush_dirty(&mut self) -> Vec<Address> {
        match self {
            CacheUnit::Unified(c) => c.flush_dirty(),
            CacheUnit::Split(s) => s.flush_dirty(),
        }
    }

    /// A short human-readable description of the organisation.
    pub fn describe(&self) -> String {
        match self {
            CacheUnit::Unified(c) => format!("unified {}", c.config()),
            CacheUnit::Split(s) => format!(
                "split I[{}] D[{}]",
                s.icache().config(),
                s.dcache().config()
            ),
        }
    }
}

/// Invariant checks over a whole unit, compiled only under the
/// `check-invariants` feature.
#[cfg(feature = "check-invariants")]
impl SplitCache {
    /// Verifies the set holding `addr` in the half that serves `kind`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants_at(&self, addr: Address, kind: AccessKind) -> Result<(), String> {
        if kind.is_data() {
            self.dcache
                .verify_invariants_at(addr)
                .map_err(|e| format!("dcache: {e}"))
        } else {
            self.icache
                .verify_invariants_at(addr)
                .map_err(|e| format!("icache: {e}"))
        }
    }

    /// Verifies every invariant of both halves.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants(&self) -> Result<(), String> {
        self.icache
            .verify_invariants()
            .map_err(|e| format!("icache: {e}"))?;
        self.dcache
            .verify_invariants()
            .map_err(|e| format!("dcache: {e}"))
    }

    /// One-line description of both halves' occupancy.
    pub fn state_summary(&self) -> String {
        format!(
            "I[{}] D[{}]",
            self.icache.state_summary(),
            self.dcache.state_summary()
        )
    }
}

#[cfg(feature = "check-invariants")]
impl CacheUnit {
    /// Whether the block containing `addr` is resident in the sub-cache
    /// that serves `kind`.
    pub fn contains_for(&self, addr: Address, kind: AccessKind) -> bool {
        match self {
            CacheUnit::Unified(c) => c.contains(addr),
            CacheUnit::Split(s) => {
                if kind.is_data() {
                    s.dcache().contains(addr)
                } else {
                    s.icache().contains(addr)
                }
            }
        }
    }

    /// Verifies the set holding `addr` in the sub-cache serving `kind`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants_at(&self, addr: Address, kind: AccessKind) -> Result<(), String> {
        match self {
            CacheUnit::Unified(c) => c.verify_invariants_at(addr),
            CacheUnit::Split(s) => s.verify_invariants_at(addr, kind),
        }
    }

    /// Verifies every invariant of the whole unit.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants(&self) -> Result<(), String> {
        match self {
            CacheUnit::Unified(c) => c.verify_invariants(),
            CacheUnit::Split(s) => s.verify_invariants(),
        }
    }

    /// One-line description of the unit's occupancy.
    pub fn state_summary(&self) -> String {
        match self {
            CacheUnit::Unified(c) => c.state_summary(),
            CacheUnit::Split(s) => s.state_summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ByteSize;
    use crate::policy::WritePolicy;

    fn half_config() -> CacheConfig {
        CacheConfig::builder()
            .total(ByteSize::kib(2))
            .block_bytes(16)
            .build()
            .unwrap()
    }

    #[test]
    fn split_routes_by_kind() {
        let mut s = SplitCache::new(half_config(), half_config());
        let a = Address::new(0x100);
        s.access(a, AccessKind::InstructionFetch);
        assert!(s.icache().contains(a));
        assert!(!s.dcache().contains(a));
        s.access(a, AccessKind::Write);
        assert!(s.dcache().contains(a));
        assert!(s.dcache().is_dirty(a));
        assert!(!s.icache().is_dirty(a));
    }

    #[test]
    fn split_total_is_sum() {
        let s = SplitCache::new(half_config(), half_config());
        assert_eq!(s.total_bytes(), 4096);
    }

    #[test]
    fn split_stats_merge() {
        let mut s = SplitCache::new(half_config(), half_config());
        s.access(Address::new(0x0), AccessKind::InstructionFetch);
        s.access(Address::new(0x0), AccessKind::Read);
        s.access(Address::new(0x0), AccessKind::Read);
        let st = s.stats();
        assert_eq!(st.read_references(), 3);
        assert_eq!(st.read_misses(), 2);
    }

    #[test]
    fn split_flush_covers_both_halves() {
        let mut s = SplitCache::new(half_config(), half_config());
        s.access(Address::new(0x40), AccessKind::Write);
        let flushed = s.flush_dirty();
        assert_eq!(flushed, vec![Address::new(0x40)]);
    }

    #[test]
    fn split_reset_stats() {
        let mut s = SplitCache::new(half_config(), half_config());
        s.access(Address::new(0x40), AccessKind::Read);
        s.reset_stats();
        assert_eq!(s.stats().total_references(), 0);
    }

    #[test]
    fn unit_unified_basics() {
        let mut u = CacheUnit::unified(half_config());
        assert!(!u.access(Address::new(0x10), AccessKind::Read).hit);
        assert!(u.access(Address::new(0x10), AccessKind::Read).hit);
        assert_eq!(u.total_bytes(), 2048);
        assert_eq!(u.block_bytes_for(AccessKind::Read), 16);
        assert_eq!(u.block_bytes_for(AccessKind::InstructionFetch), 16);
        assert!(u.describe().starts_with("unified"));
    }

    #[test]
    fn unit_split_block_bytes_for_routes() {
        let iconfig = CacheConfig::builder()
            .total(ByteSize::kib(2))
            .block_bytes(32)
            .build()
            .unwrap();
        let dconfig = half_config(); // 16B blocks
        let u = CacheUnit::split(iconfig, dconfig);
        assert_eq!(u.block_bytes_for(AccessKind::InstructionFetch), 32);
        assert_eq!(u.block_bytes_for(AccessKind::Read), 16);
        assert_eq!(u.block_bytes_for(AccessKind::Write), 16);
        assert!(u.describe().starts_with("split"));
    }

    #[test]
    fn unit_flush_and_reset() {
        let mut u = CacheUnit::split(half_config(), half_config());
        u.access(Address::new(0x80), AccessKind::Write);
        assert_eq!(u.flush_dirty(), vec![Address::new(0x80)]);
        u.reset_stats();
        assert_eq!(u.stats().total_references(), 0);
    }

    #[test]
    fn unified_write_through_unit() {
        let config = CacheConfig::builder()
            .total(ByteSize::kib(2))
            .block_bytes(16)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut u = CacheUnit::unified(config);
        let res = u.access(Address::new(0x20), AccessKind::Write);
        assert!(res.write_through);
    }
}
