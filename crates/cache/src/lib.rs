//! Functional cache models for multi-level hierarchy simulation.
//!
//! This crate implements the *functional* half of the paper's simulator:
//! set-associative caches with configurable total size, block size,
//! associativity ("set size" in the paper's terminology), fetch size,
//! replacement policy, write policy and prefetching — plus split
//! instruction/data pairs like the base machine's on-chip L1.
//!
//! Caches here decide hits, misses, fills and evictions. They are
//! deliberately timing-free: all latency modelling lives in `mlc-sim`, so
//! the same functional behaviour can be costed under any set of cycle
//! times — the separation the paper's speed–size tradeoff analysis relies
//! on.
//!
//! # Examples
//!
//! Build the base machine's L2 and run a few references through it:
//!
//! ```
//! use mlc_cache::{ByteSize, Cache, CacheConfig};
//! use mlc_trace::{AccessKind, Address};
//!
//! let config = CacheConfig::builder()
//!     .total(ByteSize::kib(512))
//!     .block_bytes(32)
//!     .build()?;
//! let mut l2 = Cache::new(config);
//!
//! let addr = Address::new(0x4_2a40);
//! assert!(!l2.access(addr, AccessKind::Read).hit); // cold miss
//! assert!(l2.access(addr, AccessKind::Read).hit);
//! # Ok::<(), mlc_cache::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[allow(clippy::module_inception)]
mod cache;
mod config;
mod error;
mod geometry;
mod policy;
mod split;
mod stats;

pub use cache::{AccessResult, Cache, Fill, FillList, FillReason};
pub use config::{CacheConfig, CacheConfigBuilder};
pub use error::ConfigError;
pub use geometry::{ByteSize, CacheGeometry};
pub use policy::{AllocPolicy, Prefetch, Replacement, WritePolicy};
pub use split::{CacheUnit, SplitCache};
pub use stats::CacheStats;
