//! Cache configuration and its builder.

use std::fmt;

use crate::error::ConfigError;
use crate::geometry::{ByteSize, CacheGeometry};
use crate::policy::{AllocPolicy, Prefetch, Replacement, WritePolicy};

/// Full configuration of one cache: geometry plus policies.
///
/// Construct with [`CacheConfig::builder`]; the builder validates the
/// combination at [`CacheConfigBuilder::build`] time.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheConfig};
///
/// // The base machine's L2: 512KB direct-mapped, 32B blocks, write-back.
/// let config = CacheConfig::builder()
///     .total(ByteSize::kib(512))
///     .block_bytes(32)
///     .build()?;
/// assert_eq!(config.geometry().sets(), 16384);
/// assert_eq!(config.fetch_blocks(), 1);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    geometry: CacheGeometry,
    replacement: Replacement,
    write_policy: WritePolicy,
    alloc_policy: AllocPolicy,
    prefetch: Prefetch,
    fetch_blocks: u32,
    sub_blocks: u32,
    victim_entries: u32,
    seed: u64,
}

impl CacheConfig {
    /// Starts building a configuration. Defaults: 4 KB direct-mapped,
    /// 16-byte blocks, LRU, write-back, write-allocate, no prefetch,
    /// fetch size = block size.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The replacement policy.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// The write-hit policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// The write-miss policy.
    pub fn alloc_policy(&self) -> AllocPolicy {
        self.alloc_policy
    }

    /// The prefetch policy.
    pub fn prefetch(&self) -> Prefetch {
        self.prefetch
    }

    /// Fetch size in blocks: how many (aligned, consecutive) blocks are
    /// brought in by one miss. 1 means fetch size equals block size.
    pub fn fetch_blocks(&self) -> u32 {
        self.fetch_blocks
    }

    /// Sub-blocks per block (sectoring): a miss fetches only the demanded
    /// sub-block, at the cost of per-sub-block valid bits. 1 disables
    /// sub-blocking; this is how fetch sizes *smaller* than the block
    /// size are modelled (the paper's fetch-size parameter covers both
    /// directions).
    pub fn sub_blocks(&self) -> u32 {
        self.sub_blocks
    }

    /// The fetch unit in bytes: `block_bytes / sub_blocks`.
    pub fn sub_block_bytes(&self) -> u64 {
        self.geometry.block_bytes() / u64::from(self.sub_blocks)
    }

    /// Entries in the victim buffer (Jouppi): a small fully associative
    /// side cache that catches conflict victims. 0 disables it.
    pub fn victim_entries(&self) -> u32 {
        self.victim_entries
    }

    /// Seed for the random replacement policy.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, {}, {}, {}",
            self.geometry, self.replacement, self.write_policy, self.alloc_policy
        )?;
        if self.fetch_blocks > 1 {
            write!(f, ", fetch {} blocks", self.fetch_blocks)?;
        }
        if self.sub_blocks > 1 {
            write!(f, ", {} sub-blocks", self.sub_blocks)?;
        }
        if self.victim_entries > 0 {
            write!(f, ", {}-entry victim buffer", self.victim_entries)?;
        }
        if self.prefetch != Prefetch::None {
            write!(f, ", prefetch {}", self.prefetch)?;
        }
        Ok(())
    }
}

/// Builder for [`CacheConfig`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    total: ByteSize,
    block_bytes: u64,
    ways: u32,
    replacement: Replacement,
    write_policy: WritePolicy,
    alloc_policy: AllocPolicy,
    prefetch: Prefetch,
    fetch_blocks: u32,
    sub_blocks: u32,
    victim_entries: u32,
    seed: u64,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder {
            total: ByteSize::kib(4),
            block_bytes: 16,
            ways: 1,
            replacement: Replacement::default(),
            write_policy: WritePolicy::default(),
            alloc_policy: AllocPolicy::default(),
            prefetch: Prefetch::default(),
            fetch_blocks: 1,
            sub_blocks: 1,
            victim_entries: 0,
            seed: 0,
        }
    }
}

impl CacheConfigBuilder {
    /// Sets the total capacity.
    pub fn total(&mut self, total: ByteSize) -> &mut Self {
        self.total = total;
        self
    }

    /// Sets the block (line) size in bytes.
    pub fn block_bytes(&mut self, block_bytes: u64) -> &mut Self {
        self.block_bytes = block_bytes;
        self
    }

    /// Sets the associativity (set size).
    pub fn ways(&mut self, ways: u32) -> &mut Self {
        self.ways = ways;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(&mut self, replacement: Replacement) -> &mut Self {
        self.replacement = replacement;
        self
    }

    /// Sets the write-hit policy.
    pub fn write_policy(&mut self, write_policy: WritePolicy) -> &mut Self {
        self.write_policy = write_policy;
        self
    }

    /// Sets the write-miss policy.
    pub fn alloc_policy(&mut self, alloc_policy: AllocPolicy) -> &mut Self {
        self.alloc_policy = alloc_policy;
        self
    }

    /// Sets the prefetch policy.
    pub fn prefetch(&mut self, prefetch: Prefetch) -> &mut Self {
        self.prefetch = prefetch;
        self
    }

    /// Sets the fetch size, in blocks (must be a power of two).
    pub fn fetch_blocks(&mut self, fetch_blocks: u32) -> &mut Self {
        self.fetch_blocks = fetch_blocks;
        self
    }

    /// Sets the number of sub-blocks per block (must be a power of two;
    /// incompatible with `fetch_blocks > 1`).
    pub fn sub_blocks(&mut self, sub_blocks: u32) -> &mut Self {
        self.sub_blocks = sub_blocks;
        self
    }

    /// Sets the victim-buffer depth (0 disables; at most 64 entries;
    /// incompatible with sub-blocking).
    pub fn victim_entries(&mut self, victim_entries: u32) -> &mut Self {
        self.victim_entries = victim_entries;
        self
    }

    /// Sets the seed used by the random replacement policy.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the geometry is invalid or the fetch
    /// size is zero, not a power of two, or larger than the cache.
    pub fn build(&self) -> Result<CacheConfig, ConfigError> {
        let geometry = CacheGeometry::new(self.total, self.block_bytes, self.ways)?;
        if self.fetch_blocks == 0 || !self.fetch_blocks.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "fetch_blocks must be a non-zero power of two, got {}",
                self.fetch_blocks
            )));
        }
        if u64::from(self.fetch_blocks) > geometry.blocks() {
            return Err(ConfigError::new(format!(
                "fetch size ({} blocks) exceeds cache capacity ({} blocks)",
                self.fetch_blocks,
                geometry.blocks()
            )));
        }
        if self.sub_blocks == 0 || !self.sub_blocks.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "sub_blocks must be a non-zero power of two, got {}",
                self.sub_blocks
            )));
        }
        if self.sub_blocks > 1 {
            if self.fetch_blocks > 1 {
                return Err(ConfigError::new(
                    "sub_blocks > 1 cannot be combined with fetch_blocks > 1",
                ));
            }
            if self.sub_blocks > 64 {
                return Err(ConfigError::new(format!(
                    "at most 64 sub-blocks are supported, got {}",
                    self.sub_blocks
                )));
            }
            if geometry.block_bytes() / u64::from(self.sub_blocks) < 4 {
                return Err(ConfigError::new(format!(
                    "sub-blocks of {} blocks of {} bytes would be under one word",
                    self.sub_blocks,
                    geometry.block_bytes()
                )));
            }
        }
        if self.victim_entries > 64 {
            return Err(ConfigError::new(format!(
                "at most 64 victim entries are supported, got {}",
                self.victim_entries
            )));
        }
        if self.victim_entries > 0 && self.sub_blocks > 1 {
            return Err(ConfigError::new(
                "a victim buffer cannot be combined with sub-blocking                  (victim entries hold whole blocks)",
            ));
        }
        Ok(CacheConfig {
            geometry,
            replacement: self.replacement,
            write_policy: self.write_policy,
            alloc_policy: self.alloc_policy,
            prefetch: self.prefetch,
            fetch_blocks: self.fetch_blocks,
            sub_blocks: self.sub_blocks,
            victim_entries: self.victim_entries,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = CacheConfig::builder().build().unwrap();
        assert_eq!(c.geometry().total(), ByteSize::kib(4));
        assert_eq!(c.geometry().block_bytes(), 16);
        assert_eq!(c.geometry().ways(), 1);
        assert_eq!(c.replacement(), Replacement::Lru);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
        assert_eq!(c.alloc_policy(), AllocPolicy::WriteAllocate);
        assert_eq!(c.prefetch(), Prefetch::None);
        assert_eq!(c.fetch_blocks(), 1);
    }

    #[test]
    fn builder_is_chainable_and_reusable() {
        let mut b = CacheConfig::builder();
        b.total(ByteSize::kib(64)).block_bytes(32).ways(4);
        let four_way = b.build().unwrap();
        b.ways(8);
        let eight_way = b.build().unwrap();
        assert_eq!(four_way.geometry().ways(), 4);
        assert_eq!(eight_way.geometry().ways(), 8);
    }

    #[test]
    fn build_rejects_bad_fetch_size() {
        assert!(CacheConfig::builder().fetch_blocks(0).build().is_err());
        assert!(CacheConfig::builder().fetch_blocks(3).build().is_err());
        assert!(CacheConfig::builder().fetch_blocks(1024).build().is_err());
        assert!(CacheConfig::builder().fetch_blocks(2).build().is_ok());
    }

    #[test]
    fn build_propagates_geometry_errors() {
        assert!(CacheConfig::builder().block_bytes(24).build().is_err());
    }

    #[test]
    fn display_summarises() {
        let mut b = CacheConfig::builder();
        b.total(ByteSize::kib(512)).block_bytes(32);
        let c = b.build().unwrap();
        let s = c.to_string();
        assert!(s.contains("512KB"), "{s}");
        assert!(s.contains("write-back"), "{s}");
        b.fetch_blocks(2).prefetch(Prefetch::NextBlock);
        let s = b.build().unwrap().to_string();
        assert!(s.contains("fetch 2 blocks"), "{s}");
        assert!(s.contains("prefetch next-block"), "{s}");
    }
}
