//! Per-cache reference counters.

use std::ops::{Add, AddAssign};

use mlc_trace::AccessKind;

fn kind_index(kind: AccessKind) -> usize {
    match kind {
        AccessKind::InstructionFetch => 0,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    }
}

/// Hit/miss counters for one cache, broken down by access kind.
///
/// *Read* in all derived ratios means loads **plus instruction fetches**,
/// the paper's definition (§2).
///
/// # Examples
///
/// ```
/// use mlc_cache::CacheStats;
/// use mlc_trace::AccessKind;
///
/// let mut s = CacheStats::default();
/// s.record(AccessKind::Read, true);
/// s.record(AccessKind::Read, false);
/// s.record(AccessKind::InstructionFetch, true);
/// assert_eq!(s.read_references(), 3);
/// assert_eq!(s.read_misses(), 1);
/// assert!((s.local_read_miss_ratio().unwrap() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    hits: [u64; 3],
    misses: [u64; 3],
    /// Dirty blocks evicted (write-backs pushed downstream).
    pub writebacks: u64,
    /// Blocks filled on demand misses.
    pub demand_fills: u64,
    /// Extra blocks filled because the fetch size exceeds the block size.
    pub group_fills: u64,
    /// Blocks filled by the prefetcher.
    pub prefetch_fills: u64,
    /// Sub-block (sector) fills, including the first sector of a fresh
    /// line in a sub-blocked cache.
    pub sub_block_fills: u64,
    /// Writes propagated downstream by a write-through policy.
    pub write_throughs: u64,
    /// Misses satisfied by the victim buffer (no downstream fetch).
    pub victim_hits: u64,
}

impl CacheStats {
    /// Records one reference of the given kind.
    #[inline]
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        if hit {
            self.hits[kind_index(kind)] += 1;
        } else {
            self.misses[kind_index(kind)] += 1;
        }
    }

    /// Hits of a given kind.
    pub fn hits(&self, kind: AccessKind) -> u64 {
        self.hits[kind_index(kind)]
    }

    /// Misses of a given kind.
    pub fn misses(&self, kind: AccessKind) -> u64 {
        self.misses[kind_index(kind)]
    }

    /// Total references of all kinds.
    pub fn total_references(&self) -> u64 {
        self.hits.iter().sum::<u64>() + self.misses.iter().sum::<u64>()
    }

    /// Total misses of all kinds.
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Read references (loads + instruction fetches) seen by this cache.
    pub fn read_references(&self) -> u64 {
        self.hits[0] + self.hits[1] + self.misses[0] + self.misses[1]
    }

    /// Read misses (loads + instruction fetches).
    pub fn read_misses(&self) -> u64 {
        self.misses[0] + self.misses[1]
    }

    /// Write references seen by this cache.
    pub fn write_references(&self) -> u64 {
        self.hits[2] + self.misses[2]
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.misses[2]
    }

    /// The *local* read miss ratio: read misses over read references
    /// reaching this cache. `None` if the cache saw no reads.
    pub fn local_read_miss_ratio(&self) -> Option<f64> {
        let refs = self.read_references();
        if refs == 0 {
            None
        } else {
            Some(self.read_misses() as f64 / refs as f64)
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        for i in 0..3 {
            self.hits[i] += rhs.hits[i];
            self.misses[i] += rhs.misses[i];
        }
        self.writebacks += rhs.writebacks;
        self.demand_fills += rhs.demand_fills;
        self.group_fills += rhs.group_fills;
        self.prefetch_fills += rhs.prefetch_fills;
        self.sub_block_fills += rhs.sub_block_fills;
        self.write_throughs += rhs.write_throughs;
        self.victim_hits += rhs.victim_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_derives() {
        let mut s = CacheStats::default();
        for _ in 0..7 {
            s.record(AccessKind::InstructionFetch, true);
        }
        s.record(AccessKind::InstructionFetch, false);
        s.record(AccessKind::Read, true);
        s.record(AccessKind::Read, false);
        s.record(AccessKind::Write, false);
        assert_eq!(s.hits(AccessKind::InstructionFetch), 7);
        assert_eq!(s.misses(AccessKind::InstructionFetch), 1);
        assert_eq!(s.read_references(), 10);
        assert_eq!(s.read_misses(), 2);
        assert_eq!(s.write_references(), 1);
        assert_eq!(s.write_misses(), 1);
        assert_eq!(s.total_references(), 11);
        assert_eq!(s.total_misses(), 3);
        assert!((s.local_read_miss_ratio().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_none() {
        assert_eq!(CacheStats::default().local_read_miss_ratio(), None);
        let mut s = CacheStats::default();
        s.record(AccessKind::Write, true);
        assert_eq!(s.local_read_miss_ratio(), None);
    }

    #[test]
    fn add_merges_all_fields() {
        let mut a = CacheStats::default();
        a.record(AccessKind::Read, true);
        a.writebacks = 3;
        a.demand_fills = 2;
        let mut b = CacheStats::default();
        b.record(AccessKind::Read, false);
        b.prefetch_fills = 1;
        b.group_fills = 4;
        b.write_throughs = 5;
        let c = a + b;
        assert_eq!(c.read_references(), 2);
        assert_eq!(c.writebacks, 3);
        assert_eq!(c.demand_fills, 2);
        assert_eq!(c.prefetch_fills, 1);
        assert_eq!(c.group_fills, 4);
        assert_eq!(c.write_throughs, 5);
    }

    #[test]
    fn reset_clears() {
        let mut s = CacheStats::default();
        s.record(AccessKind::Read, false);
        s.writebacks = 9;
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
