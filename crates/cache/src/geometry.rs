//! Cache geometry: sizes and address decomposition.

use std::fmt;

use mlc_trace::Address;

use crate::error::ConfigError;

/// A byte size, with convenient power-of-two constructors.
///
/// # Examples
///
/// ```
/// use mlc_cache::ByteSize;
///
/// assert_eq!(ByteSize::kib(4).get(), 4096);
/// assert_eq!(ByteSize::mib(1), ByteSize::kib(1024));
/// assert_eq!(format!("{}", ByteSize::kib(512)), "512KB");
/// assert_eq!(format!("{}", ByteSize::new(48)), "48B");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a size of `bytes` bytes.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a size of `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// The size in bytes.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The size in whole kibibytes (rounding down).
    pub const fn as_kib(self) -> u64 {
        self.0 / 1024
    }

    /// Whether the size is a power of two.
    pub const fn is_power_of_two(self) -> bool {
        self.0.is_power_of_two()
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl From<ByteSize> for u64 {
    fn from(s: ByteSize) -> Self {
        s.0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
            write!(f, "{}MB", b >> 20)
        } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
            write!(f, "{}KB", b >> 10)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// The physical organisation of a cache: total size, block size and
/// associativity, with derived address decomposition.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, CacheGeometry};
/// use mlc_trace::Address;
///
/// // The base machine's L2: 512KB direct-mapped, 32-byte blocks.
/// let geom = CacheGeometry::new(ByteSize::kib(512), 32, 1)?;
/// assert_eq!(geom.sets(), 16384);
/// let a = Address::new(0x0004_2a48);
/// assert_eq!(geom.block_base(a), Address::new(0x0004_2a40));
/// assert_eq!(geom.set_index(a), (0x0004_2a40 >> 5) % 16384);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    total_bytes: u64,
    block_bytes: u64,
    ways: u32,
    sets: u64,
    block_shift: u32,
    set_mask: u64,
    set_shift: u32,
}

impl CacheGeometry {
    /// Creates a geometry, validating all constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any size is zero or not a power of two,
    /// if `ways` does not divide the number of blocks, or if the resulting
    /// set count is not a power of two.
    pub fn new(total: ByteSize, block_bytes: u64, ways: u32) -> Result<Self, ConfigError> {
        let total_bytes = total.get();
        if total_bytes == 0 || !total_bytes.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "total size must be a non-zero power of two, got {total_bytes}"
            )));
        }
        if block_bytes == 0 || !block_bytes.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "block size must be a non-zero power of two, got {block_bytes}"
            )));
        }
        if block_bytes > total_bytes {
            return Err(ConfigError::new(format!(
                "block size {block_bytes} exceeds total size {total_bytes}"
            )));
        }
        if ways == 0 {
            return Err(ConfigError::new("associativity must be at least 1"));
        }
        let blocks = total_bytes / block_bytes;
        if u64::from(ways) > blocks {
            return Err(ConfigError::new(format!(
                "associativity {ways} exceeds block count {blocks}"
            )));
        }
        if !blocks.is_multiple_of(u64::from(ways)) {
            return Err(ConfigError::new(format!(
                "associativity {ways} does not divide block count {blocks}"
            )));
        }
        let sets = blocks / u64::from(ways);
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "set count {sets} is not a power of two"
            )));
        }
        Ok(CacheGeometry {
            total_bytes,
            block_bytes,
            ways,
            sets,
            block_shift: block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
        })
    }

    /// Creates a fully associative geometry (one set).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the same conditions as
    /// [`CacheGeometry::new`].
    pub fn fully_associative(total: ByteSize, block_bytes: u64) -> Result<Self, ConfigError> {
        let blocks = total.get() / block_bytes.max(1);
        let ways = u32::try_from(blocks)
            .map_err(|_| ConfigError::new("too many blocks for a fully associative cache"))?;
        CacheGeometry::new(total, block_bytes, ways)
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total capacity.
    pub fn total(&self) -> ByteSize {
        ByteSize(self.total_bytes)
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Associativity (set size, in the paper's terminology).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Total number of blocks (lines).
    pub fn blocks(&self) -> u64 {
        self.sets * u64::from(self.ways)
    }

    /// Whether the cache is direct-mapped.
    pub fn is_direct_mapped(&self) -> bool {
        self.ways == 1
    }

    /// The set index for an address.
    #[inline]
    pub fn set_index(&self, addr: Address) -> u64 {
        (addr.get() >> self.block_shift) & self.set_mask
    }

    /// The tag for an address (all bits above the set index).
    #[inline]
    pub fn tag(&self, addr: Address) -> u64 {
        addr.get() >> self.block_shift >> self.set_shift
    }

    /// The base address of the block containing `addr`.
    #[inline]
    pub fn block_base(&self, addr: Address) -> Address {
        addr.block_base(self.block_bytes)
    }

    /// Reconstructs a block base address from a set index and tag —
    /// the inverse of [`CacheGeometry::set_index`]/[`CacheGeometry::tag`].
    #[inline]
    pub fn block_address(&self, set: u64, tag: u64) -> Address {
        Address::new(((tag << self.set_shift) | set) << self.block_shift)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}-way, {}B blocks",
            self.total(),
            self.ways,
            self.block_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::kib(2).get(), 2048);
        assert_eq!(ByteSize::mib(4).get(), 4 << 20);
        assert_eq!(ByteSize::new(10).get(), 10);
        let v: u64 = ByteSize::kib(1).into();
        assert_eq!(v, 1024);
        assert_eq!(ByteSize::from(64u64).get(), 64);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::kib(4).to_string(), "4KB");
        assert_eq!(ByteSize::mib(2).to_string(), "2MB");
        assert_eq!(ByteSize::new(33).to_string(), "33B");
        assert_eq!(ByteSize::kib(1536).to_string(), "1536KB");
    }

    #[test]
    fn base_machine_l1_geometry() {
        // 2KB direct-mapped with 16B blocks (each half of the split L1).
        let g = CacheGeometry::new(ByteSize::kib(2), 16, 1).unwrap();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.blocks(), 128);
        assert!(g.is_direct_mapped());
    }

    #[test]
    fn set_associative_geometry() {
        let g = CacheGeometry::new(ByteSize::kib(8), 32, 4).unwrap();
        assert_eq!(g.sets(), 64);
        assert_eq!(g.ways(), 4);
        assert_eq!(g.blocks(), 256);
        assert!(!g.is_direct_mapped());
    }

    #[test]
    fn fully_associative_geometry() {
        let g = CacheGeometry::fully_associative(ByteSize::kib(1), 16).unwrap();
        assert_eq!(g.sets(), 1);
        assert_eq!(g.ways(), 64);
    }

    #[test]
    fn index_and_tag_round_trip() {
        let g = CacheGeometry::new(ByteSize::kib(64), 32, 2).unwrap();
        for raw in [0u64, 0x1234_5678, 0xdead_beef_cafe, !31u64] {
            let a = Address::new(raw);
            let set = g.set_index(a);
            let tag = g.tag(a);
            assert!(set < g.sets());
            assert_eq!(g.block_address(set, tag), g.block_base(a));
        }
    }

    #[test]
    fn distinct_blocks_mapping_to_same_set_have_distinct_tags() {
        let g = CacheGeometry::new(ByteSize::kib(4), 16, 1).unwrap();
        let a = Address::new(0x0000);
        let b = Address::new(0x1000); // same set index, next tag value
        assert_eq!(g.set_index(a), g.set_index(b));
        assert_ne!(g.tag(a), g.tag(b));
    }

    #[test]
    fn rejects_invalid_geometries() {
        assert!(CacheGeometry::new(ByteSize::new(0), 16, 1).is_err());
        assert!(CacheGeometry::new(ByteSize::new(3000), 16, 1).is_err());
        assert!(CacheGeometry::new(ByteSize::kib(4), 0, 1).is_err());
        assert!(CacheGeometry::new(ByteSize::kib(4), 24, 1).is_err());
        assert!(CacheGeometry::new(ByteSize::kib(4), 16, 0).is_err());
        assert!(CacheGeometry::new(ByteSize::kib(4), 8192, 1).is_err());
        assert!(CacheGeometry::new(ByteSize::new(64), 16, 8).is_err());
        // ways=3 does not divide 256 blocks
        assert!(CacheGeometry::new(ByteSize::kib(4), 16, 3).is_err());
    }

    #[test]
    fn display_formats() {
        let g = CacheGeometry::new(ByteSize::kib(512), 32, 1).unwrap();
        assert_eq!(g.to_string(), "512KB 1-way, 32B blocks");
    }
}
