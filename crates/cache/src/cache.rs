//! The functional set-associative cache model.
//!
//! *Functional* means this type decides hits, misses, fills and evictions,
//! but knows nothing about time — all latency accounting lives in
//! `mlc-sim`. Keeping the two concerns separate yields a simulator
//! invariant the test suite exploits: the sequence of hits and misses
//! depends only on the reference stream and the cache organisation, never
//! on cycle times.

use mlc_trace::synth::Xoshiro;
use mlc_trace::{AccessKind, Address};

use crate::config::CacheConfig;
use crate::error::ConfigError;
use crate::geometry::CacheGeometry;
use crate::policy::{AllocPolicy, Prefetch, Replacement, WritePolicy};
use crate::stats::CacheStats;

const VALID: u8 = 0b01;
const DIRTY: u8 = 0b10;

/// Why a block was brought into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillReason {
    /// The block the missing reference demanded.
    Demand,
    /// A neighbour block brought in because the fetch size exceeds the
    /// block size.
    FetchGroup,
    /// A block brought in by the prefetcher.
    Prefetch,
}

/// One block (or sub-block) filled into the cache by an access, together
/// with the dirty victim (if any) its arrival evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// Base address of the data brought in.
    pub block: Address,
    /// Number of bytes fetched: the block size, or one sub-block for a
    /// sub-blocked cache.
    pub bytes: u64,
    /// Why it was brought in.
    pub reason: FillReason,
    /// Base address of a dirty block this fill evicted, which must be
    /// written downstream.
    pub writeback: Option<Address>,
}

/// How many [`Fill`]s an [`AccessResult`] holds without touching the
/// heap: a demand fill plus one group/prefetch neighbour covers every
/// base-machine organisation, so the simulator's miss path stays
/// allocation-free. Larger fetch groups spill transparently.
const INLINE_FILLS: usize = 2;

/// The fills produced by one access, stored inline for the common short
/// cases (see [`INLINE_FILLS`]). Dereferences to a slice, so it reads
/// like the `Vec<Fill>` it replaces.
#[derive(Debug, Clone)]
pub struct FillList {
    len: u8,
    inline: [Fill; INLINE_FILLS],
    spill: Vec<Fill>,
}

impl FillList {
    const DUMMY: Fill = Fill {
        block: Address::new(0),
        bytes: 0,
        reason: FillReason::Demand,
        writeback: None,
    };

    /// An empty list (no allocation).
    #[inline]
    pub fn new() -> Self {
        FillList {
            len: 0,
            inline: [Self::DUMMY; INLINE_FILLS],
            spill: Vec::new(),
        }
    }

    /// Appends a fill, spilling to the heap past [`INLINE_FILLS`].
    #[inline]
    pub fn push(&mut self, fill: Fill) {
        if !self.spill.is_empty() {
            self.spill.push(fill);
        } else if (self.len as usize) < INLINE_FILLS {
            self.inline[self.len as usize] = fill;
            self.len += 1;
        } else {
            self.spill.reserve(INLINE_FILLS + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(fill);
            self.len = 0;
        }
    }
}

impl Default for FillList {
    fn default() -> Self {
        FillList::new()
    }
}

impl std::ops::Deref for FillList {
    type Target = [Fill];

    #[inline]
    fn deref(&self) -> &[Fill] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl PartialEq for FillList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for FillList {}

impl<'a> IntoIterator for &'a FillList {
    type Item = &'a Fill;
    type IntoIter = std::slice::Iter<'a, Fill>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The complete outcome of one cache access.
///
/// The timing simulator turns this into latency: each [`Fill`] is a
/// downstream fetch, each `writeback` enters the write buffer, and
/// `write_through` forwards store data downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the reference hit.
    pub hit: bool,
    /// Whether a main-cache miss was satisfied by the victim buffer (the
    /// block swapped back in without a downstream fetch). `hit` is
    /// `false` in this case; the timing simulator charges a swap penalty
    /// instead of a miss.
    pub victim_hit: bool,
    /// Blocks fetched from downstream, in fetch order. Empty on hits, on
    /// victim-buffer hits, and on no-allocate write misses.
    pub fills: FillList,
    /// Dirty blocks ejected from the victim buffer that must be written
    /// downstream (in addition to any per-fill writebacks).
    pub extra_writebacks: Vec<Address>,
    /// Whether store data must be forwarded downstream (write-through
    /// caches, and no-allocate write misses).
    pub write_through: bool,
}

impl AccessResult {
    fn hit() -> Self {
        AccessResult {
            hit: true,
            victim_hit: false,
            fills: FillList::new(),
            extra_writebacks: Vec::new(),
            write_through: false,
        }
    }

    /// The fill that satisfied the demand reference, if any.
    pub fn demand_fill(&self) -> Option<&Fill> {
        self.fills.iter().find(|f| f.reason == FillReason::Demand)
    }

    /// Iterates over the dirty blocks this access pushed out (fill
    /// victims first, then victim-buffer ejections).
    pub fn writebacks(&self) -> impl Iterator<Item = Address> + '_ {
        self.fills
            .iter()
            .filter_map(|f| f.writeback)
            .chain(self.extra_writebacks.iter().copied())
    }
}

/// A small fully associative LRU buffer of recent victims (Jouppi's
/// victim cache): blocks evicted from the main cache park here and can
/// be swapped back on a subsequent miss, removing conflict misses
/// without widening the main cache's sets.
#[derive(Debug, Clone)]
struct VictimBuffer {
    /// (block base, dirty), most recently inserted first.
    entries: Vec<(Address, bool)>,
    capacity: usize,
}

impl VictimBuffer {
    fn new(capacity: usize) -> Self {
        VictimBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Removes and returns the entry for `block`, if present.
    fn take(&mut self, block: Address) -> Option<bool> {
        let pos = self.entries.iter().position(|&(b, _)| b == block)?;
        Some(self.entries.remove(pos).1)
    }

    /// Inserts a victim, returning an ejected older entry if full.
    fn insert(&mut self, block: Address, dirty: bool) -> Option<(Address, bool)> {
        self.entries.insert(0, (block, dirty));
        if self.entries.len() > self.capacity {
            self.entries.pop()
        } else {
            None
        }
    }
}

/// A functional set-associative cache.
///
/// # Examples
///
/// ```
/// use mlc_cache::{ByteSize, Cache, CacheConfig};
/// use mlc_trace::{AccessKind, Address};
///
/// let config = CacheConfig::builder()
///     .total(ByteSize::kib(4))
///     .block_bytes(16)
///     .build()?;
/// let mut cache = Cache::new(config);
///
/// let a = Address::new(0x1000);
/// let miss = cache.access(a, AccessKind::Read);
/// assert!(!miss.hit);
/// let hit = cache.access(a, AccessKind::Read);
/// assert!(hit.hit);
/// # Ok::<(), mlc_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    geom: CacheGeometry,
    ways: usize,
    tags: Vec<u64>,
    flags: Vec<u8>,
    stamps: Vec<u64>,
    /// Per-line sub-block valid bits (bit i = sub-block i present).
    /// Unused (all lines implicitly full) when `sub_blocks == 1`.
    sub_masks: Vec<u64>,
    victim: Option<VictimBuffer>,
    /// Whether a hit must refresh the line's replacement stamp: true LRU
    /// with an actual choice to influence. A direct-mapped cache has no
    /// choice, so its hits skip the stamp traffic entirely.
    stamp_on_hit: bool,
    tick: u64,
    rng: Xoshiro,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let geom = config.geometry();
        let lines = geom.blocks() as usize;
        Cache {
            config,
            geom,
            ways: geom.ways() as usize,
            tags: vec![0; lines],
            flags: vec![0; lines],
            stamps: vec![0; lines],
            sub_masks: vec![0; if config.sub_blocks() > 1 { lines } else { 0 }],
            victim: (config.victim_entries() > 0)
                .then(|| VictimBuffer::new(config.victim_entries() as usize)),
            stamp_on_hit: config.replacement() == Replacement::Lru && geom.ways() > 1,
            tick: 0,
            rng: Xoshiro::seed_from_u64(config.seed() ^ 0xCACE),
            stats: CacheStats::default(),
        }
    }

    /// Convenience constructor from builder parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the parameters are invalid.
    pub fn direct_mapped(total: crate::ByteSize, block_bytes: u64) -> Result<Self, ConfigError> {
        let config = CacheConfig::builder()
            .total(total)
            .block_bytes(block_bytes)
            .build()?;
        Ok(Cache::new(config))
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (cache contents are preserved — used to discard
    /// warm-up references, as the paper does with its cold-start region).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn line_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }

    #[inline]
    fn find(&self, set: u64, tag: u64) -> Option<usize> {
        let start = set as usize * self.ways;
        let flags = &self.flags[start..start + self.ways];
        let tags = &self.tags[start..start + self.ways];
        flags
            .iter()
            .zip(tags)
            .position(|(&f, &t)| f & VALID != 0 && t == tag)
            .map(|way| start + way)
    }

    #[inline]
    fn sub_bit(&self, addr: Address) -> u64 {
        let sub_bytes = self.config.sub_block_bytes();
        1u64 << (addr.block_offset(self.geom.block_bytes()) / sub_bytes)
    }

    /// Base address of the sub-block containing `addr`.
    #[inline]
    fn sub_base(&self, addr: Address) -> Address {
        addr.block_base(self.config.sub_block_bytes())
    }

    /// Hit-only probe: the fast path of [`access`](Cache::access).
    ///
    /// If the reference is a plain hit — present, and (for a sub-blocked
    /// cache) the demanded sector resident — this performs the complete
    /// access (statistics, replacement stamps, dirty bits) and returns
    /// `Some(write_through)`. Otherwise it touches *nothing* and returns
    /// `None`; the caller must then run the full [`access`](Cache::access)
    /// path, which repeats the (read-only) lookup. The pair is exactly
    /// equivalent to one `access` call; this entry point just lets hot
    /// callers skip constructing an [`AccessResult`] for the overwhelmingly
    /// common case.
    #[inline]
    pub fn access_hit(&mut self, addr: Address, kind: AccessKind) -> Option<bool> {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        let line = self.find(set, tag)?;
        if self.config.sub_blocks() > 1 && self.sub_masks[line] & self.sub_bit(addr) == 0 {
            return None; // sub-block miss: full path
        }
        self.stats.record(kind, true);
        if self.stamp_on_hit {
            self.tick += 1;
            self.stamps[line] = self.tick;
        }
        let mut write_through = false;
        if kind.is_write() {
            match self.config.write_policy() {
                WritePolicy::WriteBack => self.flags[line] |= DIRTY,
                WritePolicy::WriteThrough => {
                    write_through = true;
                    self.stats.write_throughs += 1;
                }
            }
        }
        Some(write_through)
    }

    /// Performs one access, updating state and statistics.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessResult {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        let is_write = kind.is_write();

        if let Some(line) = self.find(set, tag) {
            let sub_blocked = self.config.sub_blocks() > 1;
            if sub_blocked && self.sub_masks[line] & self.sub_bit(addr) == 0 {
                // Sub-block miss: the tag matches but the demanded sector
                // has not been fetched. Fetch just that sub-block; no
                // eviction takes place.
                self.stats.record(kind, false);
                self.sub_masks[line] |= self.sub_bit(addr);
                self.tick += 1;
                self.stamps[line] = self.tick;
                self.stats.sub_block_fills += 1;
                let mut fills = FillList::new();
                fills.push(Fill {
                    block: self.sub_base(addr),
                    bytes: self.config.sub_block_bytes(),
                    reason: FillReason::Demand,
                    writeback: None,
                });
                let mut result = AccessResult {
                    hit: false,
                    victim_hit: false,
                    fills,
                    extra_writebacks: Vec::new(),
                    write_through: false,
                };
                if is_write {
                    match self.config.write_policy() {
                        WritePolicy::WriteBack => self.flags[line] |= DIRTY,
                        WritePolicy::WriteThrough => {
                            result.write_through = true;
                            self.stats.write_throughs += 1;
                        }
                    }
                }
                return result;
            }
            self.stats.record(kind, true);
            if self.stamp_on_hit {
                self.tick += 1;
                self.stamps[line] = self.tick;
            }
            let mut result = AccessResult::hit();
            if is_write {
                match self.config.write_policy() {
                    WritePolicy::WriteBack => self.flags[line] |= DIRTY,
                    WritePolicy::WriteThrough => {
                        result.write_through = true;
                        self.stats.write_throughs += 1;
                    }
                }
            }
            return result;
        }

        // Miss.
        self.stats.record(kind, false);
        let mut result = AccessResult {
            hit: false,
            victim_hit: false,
            fills: FillList::new(),
            extra_writebacks: Vec::new(),
            write_through: false,
        };

        // Victim-buffer probe: swap the block back in without touching
        // the next level down.
        let demand_block = self.geom.block_base(addr);
        if let Some(victim) = self.victim.as_mut() {
            if let Some(mut dirty) = victim.take(demand_block) {
                self.stats.victim_hits += 1;
                result.victim_hit = true;
                if is_write {
                    match self.config.write_policy() {
                        WritePolicy::WriteBack => dirty = true,
                        WritePolicy::WriteThrough => {
                            result.write_through = true;
                            self.stats.write_throughs += 1;
                        }
                    }
                }
                let line = self.choose_victim(set);
                if self.flags[line] & VALID != 0 {
                    let displaced = self.geom.block_address(set, self.tags[line]);
                    let displaced_dirty = self.flags[line] & DIRTY != 0;
                    if let Some((ejected, true)) = self
                        .victim
                        .as_mut()
                        .expect("probed above")
                        .insert(displaced, displaced_dirty)
                    {
                        result.extra_writebacks.push(ejected);
                        self.stats.writebacks += 1;
                    }
                }
                self.tags[line] = tag;
                self.flags[line] = if dirty { VALID | DIRTY } else { VALID };
                self.tick += 1;
                self.stamps[line] = self.tick;
                return result;
            }
        }

        if is_write && self.config.alloc_policy() == AllocPolicy::NoWriteAllocate {
            result.write_through = true;
            self.stats.write_throughs += 1;
            return result;
        }

        // Fill the aligned fetch group containing the demand block.
        let block_bytes = self.geom.block_bytes();
        let fetch_bytes = block_bytes * u64::from(self.config.fetch_blocks());
        let group_base = Address::new(addr.get() & !(fetch_bytes - 1));
        let demand_base = self.geom.block_base(addr);
        for i in 0..u64::from(self.config.fetch_blocks()) {
            let block = group_base.wrapping_add(i * block_bytes);
            let reason = if block == demand_base {
                FillReason::Demand
            } else {
                FillReason::FetchGroup
            };
            // For a sub-blocked cache the demanded word selects the sector
            // to fetch; for whole-block fills the base is representative.
            let within = if block == demand_base { addr } else { block };
            self.fill_block(block, within, reason, &mut result);
        }

        if self.config.prefetch() == Prefetch::NextBlock {
            let next = demand_base.wrapping_add(block_bytes);
            self.fill_block(next, next, FillReason::Prefetch, &mut result);
        }

        // Mark the demand block dirty for an allocating write-back write;
        // forward the data for a write-through write.
        if is_write {
            match self.config.write_policy() {
                WritePolicy::WriteBack => {
                    let set = self.geom.set_index(demand_base);
                    let tag = self.geom.tag(demand_base);
                    if let Some(line) = self.find(set, tag) {
                        self.flags[line] |= DIRTY;
                    }
                }
                WritePolicy::WriteThrough => {
                    result.write_through = true;
                    self.stats.write_throughs += 1;
                }
            }
        }
        result
    }

    fn fill_block(
        &mut self,
        block: Address,
        demanded: Address,
        reason: FillReason,
        result: &mut AccessResult,
    ) {
        let set = self.geom.set_index(block);
        let tag = self.geom.tag(block);
        if self.find(set, tag).is_some() {
            return; // already present (fetch-group/prefetch overlap)
        }
        let line = self.choose_victim(set);
        let mut writeback = None;
        if self.flags[line] & VALID != 0 {
            let displaced = self.geom.block_address(set, self.tags[line]);
            let displaced_dirty = self.flags[line] & DIRTY != 0;
            match self.victim.as_mut() {
                Some(victim) => {
                    // The victim parks in the buffer; only a dirty block
                    // ejected off its far end must be written downstream.
                    if let Some((ejected, true)) = victim.insert(displaced, displaced_dirty) {
                        result.extra_writebacks.push(ejected);
                        self.stats.writebacks += 1;
                    }
                }
                None if displaced_dirty => {
                    writeback = Some(displaced);
                    self.stats.writebacks += 1;
                }
                None => {}
            }
        }
        self.tags[line] = tag;
        self.flags[line] = VALID;
        self.tick += 1;
        self.stamps[line] = self.tick;
        let sub_blocked = self.config.sub_blocks() > 1;
        let (fill_base, fill_bytes) = if sub_blocked {
            // Only the demanded sector arrives; the rest of the line
            // stays invalid.
            self.sub_masks[line] = self.sub_bit(demanded);
            self.stats.sub_block_fills += 1;
            (self.sub_base(demanded), self.config.sub_block_bytes())
        } else {
            (block, self.geom.block_bytes())
        };
        match reason {
            FillReason::Demand => self.stats.demand_fills += 1,
            FillReason::FetchGroup => self.stats.group_fills += 1,
            FillReason::Prefetch => self.stats.prefetch_fills += 1,
        }
        result.fills.push(Fill {
            block: fill_base,
            bytes: fill_bytes,
            reason,
            writeback,
        });
    }

    fn choose_victim(&mut self, set: u64) -> usize {
        let range = self.line_range(set);
        // Prefer an invalid way.
        for i in range.clone() {
            if self.flags[i] & VALID == 0 {
                return i;
            }
        }
        match self.config.replacement() {
            Replacement::Lru | Replacement::Fifo => range
                .min_by_key(|&i| self.stamps[i])
                .expect("every set has at least one way"),
            Replacement::Random => {
                let start = range.start;
                start + self.rng.next_below(self.ways as u64) as usize
            }
        }
    }

    /// Whether the block containing `addr` is present.
    pub fn contains(&self, addr: Address) -> bool {
        self.find(self.geom.set_index(addr), self.geom.tag(addr))
            .is_some()
    }

    /// Whether the block containing `addr` is present *and dirty*.
    pub fn is_dirty(&self, addr: Address) -> bool {
        self.find(self.geom.set_index(addr), self.geom.tag(addr))
            .is_some_and(|line| self.flags[line] & DIRTY != 0)
    }

    /// Drains every dirty block (including dirty victim-buffer entries),
    /// returning their base addresses and marking them clean. Valid bits
    /// are preserved.
    pub fn flush_dirty(&mut self) -> Vec<Address> {
        let mut out = Vec::new();
        for set in 0..self.geom.sets() {
            for line in self.line_range(set) {
                if self.flags[line] & (VALID | DIRTY) == VALID | DIRTY {
                    out.push(self.geom.block_address(set, self.tags[line]));
                    self.flags[line] &= !DIRTY;
                }
            }
        }
        if let Some(victim) = self.victim.as_mut() {
            for (block, dirty) in victim.entries.iter_mut() {
                if *dirty {
                    out.push(*block);
                    *dirty = false;
                }
            }
        }
        out
    }

    /// Invalidates every block (contents and dirty data are discarded).
    pub fn invalidate_all(&mut self) {
        self.flags.fill(0);
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> u64 {
        self.flags.iter().filter(|&&f| f & VALID != 0).count() as u64
    }
}

/// Structural invariant checks, compiled only under the
/// `check-invariants` feature. `mlc-sim` calls [`Cache::verify_invariants`]
/// after every access it simulates; a violation here means the cache
/// model itself corrupted its state.
#[cfg(feature = "check-invariants")]
impl Cache {
    /// Verifies the structural invariants of one set.
    ///
    /// Checked invariants:
    /// * no two valid ways of the set share a tag;
    /// * every valid line's replacement stamp lies in `1..=tick`, and
    ///   stamps are unique among the set's valid lines (LRU/FIFO stack
    ///   well-formedness);
    /// * a dirty flag implies the line is valid, and never appears in a
    ///   write-through cache;
    /// * in a sub-blocked cache, every valid line has a non-empty
    ///   sector mask confined to the configured number of sub-blocks.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_set(&self, set: u64) -> Result<(), String> {
        let sub_blocked = self.config.sub_blocks() > 1;
        let lines = self.line_range(set);
        for i in lines.clone() {
            let valid = self.flags[i] & VALID != 0;
            if self.flags[i] & DIRTY != 0 {
                if !valid {
                    return Err(format!("set {set}: dirty line {i} is not valid"));
                }
                if self.config.write_policy() == WritePolicy::WriteThrough {
                    return Err(format!(
                        "set {set}: dirty line {i} in a write-through cache"
                    ));
                }
            }
            if !valid {
                continue;
            }
            if self.stamps[i] == 0 || self.stamps[i] > self.tick {
                return Err(format!(
                    "set {set}: line {i} stamp {} outside 1..={}",
                    self.stamps[i], self.tick
                ));
            }
            if sub_blocked {
                let mask = self.sub_masks[i];
                let full = (1u64 << self.config.sub_blocks()) - 1;
                if mask == 0 || mask & !full != 0 {
                    return Err(format!(
                        "set {set}: line {i} sector mask {mask:#x} invalid for {} sub-blocks",
                        self.config.sub_blocks()
                    ));
                }
            }
            for j in lines.clone().skip(i + 1 - lines.start) {
                if self.flags[j] & VALID != 0 {
                    if self.tags[j] == self.tags[i] {
                        return Err(format!(
                            "set {set}: ways {i} and {j} share tag {:#x}",
                            self.tags[i]
                        ));
                    }
                    if self.stamps[j] == self.stamps[i] {
                        return Err(format!(
                            "set {set}: ways {i} and {j} share stamp {}",
                            self.stamps[i]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Cheap per-access check: verifies the set holding `addr` plus the
    /// victim buffer, skipping the rest of the cache.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants_at(&self, addr: Address) -> Result<(), String> {
        self.verify_set(self.geom.set_index(addr))?;
        self.verify_victim_buffer()
    }

    /// Verifies every structural invariant of the whole cache. This scans
    /// all sets — intended for periodic deep checks and end-of-run
    /// verification, not the per-access path.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants(&self) -> Result<(), String> {
        for set in 0..self.geom.sets() {
            self.verify_set(set)?;
        }
        self.verify_victim_buffer()
    }

    fn verify_victim_buffer(&self) -> Result<(), String> {
        if let Some(victim) = &self.victim {
            if victim.entries.len() > victim.capacity {
                return Err(format!(
                    "victim buffer holds {} entries, capacity {}",
                    victim.entries.len(),
                    victim.capacity
                ));
            }
            if self.config.write_policy() == WritePolicy::WriteThrough
                && victim.entries.iter().any(|&(_, dirty)| dirty)
            {
                return Err("dirty victim-buffer entry in a write-through cache".into());
            }
        }
        Ok(())
    }

    /// One-line state summary for invariant-violation reports.
    pub fn state_summary(&self) -> String {
        format!(
            "{} sets x {} ways, {} resident, tick {}",
            self.geom.sets(),
            self.ways,
            self.resident_blocks(),
            self.tick
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ByteSize;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets × `ways` ways × 16B blocks.
        let total = ByteSize::new(64 * u64::from(ways));
        let config = CacheConfig::builder()
            .total(total)
            .block_bytes(16)
            .ways(ways)
            .build()
            .unwrap();
        Cache::new(config)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(1);
        let a = Address::new(0x40);
        assert!(!c.access(a, AccessKind::Read).hit);
        assert!(c.access(a, AccessKind::Read).hit);
        assert!(c.contains(a));
        assert_eq!(c.stats().read_misses(), 1);
        assert_eq!(c.stats().demand_fills, 1);
    }

    #[test]
    fn same_block_different_word_hits() {
        let mut c = small_cache(1);
        c.access(Address::new(0x40), AccessKind::Read);
        assert!(c.access(Address::new(0x4c), AccessKind::Read).hit);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = small_cache(1);
        let a = Address::new(0x00);
        let b = Address::new(0x40); // 4 sets × 16B = 64B stride aliases
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn two_way_holds_both_conflicting_blocks() {
        let mut c = small_cache(2);
        let a = Address::new(0x00);
        let b = Address::new(0x80); // same set in a 4-set, 2-way cache
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        assert!(c.contains(a) && c.contains(b));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache(2);
        let a = Address::new(0x00);
        let b = Address::new(0x80);
        let d = Address::new(0x100); // third block, same set
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        c.access(d, AccessKind::Read); // must evict b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn fifo_evicts_first_in_even_if_recently_used() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(128))
            .block_bytes(16)
            .ways(2)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        let a = Address::new(0x00);
        let b = Address::new(0x80);
        let d = Address::new(0x100);
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // touching a must NOT save it under FIFO
        c.access(d, AccessKind::Read);
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn random_replacement_stays_within_set() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .ways(4)
            .replacement(Replacement::Random)
            .seed(7)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        // Fill one set with 4 blocks, then evict repeatedly.
        for i in 0..16u64 {
            c.access(Address::new(i * 64), AccessKind::Read);
        }
        assert_eq!(c.resident_blocks(), 4);
    }

    #[test]
    fn write_back_marks_dirty_and_evicts_with_writeback() {
        let mut c = small_cache(1);
        let a = Address::new(0x00);
        let b = Address::new(0x40);
        c.access(a, AccessKind::Write);
        assert!(c.is_dirty(a));
        let res = c.access(b, AccessKind::Read);
        let wbs: Vec<_> = res.writebacks().collect();
        assert_eq!(wbs, vec![Address::new(0x00)]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = small_cache(1);
        c.access(Address::new(0x00), AccessKind::Read);
        let res = c.access(Address::new(0x40), AccessKind::Read);
        assert_eq!(res.writebacks().count(), 0);
    }

    #[test]
    fn write_hit_then_read_keeps_dirty() {
        let mut c = small_cache(1);
        let a = Address::new(0x20);
        c.access(a, AccessKind::Write);
        c.access(a, AccessKind::Read);
        assert!(c.is_dirty(a));
    }

    #[test]
    fn write_through_never_dirties() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        let a = Address::new(0x10);
        let miss = c.access(a, AccessKind::Write);
        assert!(miss.write_through);
        assert!(!miss.fills.is_empty()); // still write-allocate by default
        let hit = c.access(a, AccessKind::Write);
        assert!(hit.hit && hit.write_through);
        assert!(!c.is_dirty(a));
        assert_eq!(c.flush_dirty(), vec![]);
    }

    #[test]
    fn no_write_allocate_skips_fill() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .write_policy(WritePolicy::WriteThrough)
            .alloc_policy(AllocPolicy::NoWriteAllocate)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        let a = Address::new(0x10);
        let res = c.access(a, AccessKind::Write);
        assert!(!res.hit);
        assert!(res.fills.is_empty());
        assert!(res.write_through);
        assert!(!c.contains(a));
    }

    #[test]
    fn fetch_group_brings_neighbours() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .fetch_blocks(2)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        // 0x30 lies in the second block of the aligned 32-byte group
        // [0x20, 0x40).
        let res = c.access(Address::new(0x30), AccessKind::Read);
        assert_eq!(res.fills.len(), 2);
        assert_eq!(res.fills[0].block, Address::new(0x20));
        assert_eq!(res.fills[0].reason, FillReason::FetchGroup);
        assert_eq!(res.fills[1].block, Address::new(0x30));
        assert_eq!(res.fills[1].reason, FillReason::Demand);
        assert!(c.contains(Address::new(0x20)));
        assert_eq!(c.stats().group_fills, 1);
    }

    #[test]
    fn prefetch_next_block() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .prefetch(Prefetch::NextBlock)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        let res = c.access(Address::new(0x40), AccessKind::Read);
        assert_eq!(res.fills.len(), 2);
        assert_eq!(res.fills[1].block, Address::new(0x50));
        assert_eq!(res.fills[1].reason, FillReason::Prefetch);
        assert!(c.contains(Address::new(0x50)));
        assert_eq!(c.stats().prefetch_fills, 1);
        // A subsequent demand access to the prefetched block hits.
        assert!(c.access(Address::new(0x50), AccessKind::Read).hit);
    }

    #[test]
    fn demand_fill_accessor() {
        let mut c = small_cache(1);
        let res = c.access(Address::new(0x40), AccessKind::Read);
        assert_eq!(res.demand_fill().unwrap().block, Address::new(0x40));
        let res = c.access(Address::new(0x40), AccessKind::Read);
        assert!(res.demand_fill().is_none());
    }

    #[test]
    fn write_allocate_write_miss_dirties_filled_block() {
        let mut c = small_cache(1);
        let a = Address::new(0x40);
        let res = c.access(a, AccessKind::Write);
        assert!(!res.hit && !res.write_through);
        assert!(c.is_dirty(a));
    }

    #[test]
    fn flush_dirty_reports_and_cleans() {
        let mut c = small_cache(2);
        c.access(Address::new(0x00), AccessKind::Write);
        c.access(Address::new(0x10), AccessKind::Write);
        c.access(Address::new(0x20), AccessKind::Read);
        let mut flushed = c.flush_dirty();
        flushed.sort();
        assert_eq!(flushed, vec![Address::new(0x00), Address::new(0x10)]);
        assert!(c.flush_dirty().is_empty());
        assert!(c.contains(Address::new(0x00)), "flush keeps blocks valid");
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small_cache(1);
        c.access(Address::new(0x0), AccessKind::Write);
        c.invalidate_all();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.contains(Address::new(0x0)));
        assert!(c.flush_dirty().is_empty(), "invalidate discards dirty data");
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = small_cache(1);
        c.access(Address::new(0x0), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().total_references(), 0);
        assert!(c.access(Address::new(0x0), AccessKind::Read).hit);
    }

    #[test]
    fn stats_track_all_kinds() {
        let mut c = small_cache(1);
        c.access(Address::new(0x0), AccessKind::InstructionFetch);
        c.access(Address::new(0x0), AccessKind::InstructionFetch);
        c.access(Address::new(0x100), AccessKind::Write);
        let s = c.stats();
        assert_eq!(s.misses(AccessKind::InstructionFetch), 1);
        assert_eq!(s.hits(AccessKind::InstructionFetch), 1);
        assert_eq!(s.misses(AccessKind::Write), 1);
        assert_eq!(s.read_references(), 2);
    }

    fn sub_blocked_cache() -> Cache {
        // 4 sets × 1 way × 32B blocks, 4 sub-blocks of 8B each.
        let config = CacheConfig::builder()
            .total(ByteSize::new(128))
            .block_bytes(32)
            .sub_blocks(4)
            .build()
            .unwrap();
        Cache::new(config)
    }

    #[test]
    fn sub_block_miss_fetches_only_the_sector() {
        let mut c = sub_blocked_cache();
        // Cold miss on word 0 of a block: fetch only sub-block 0 (8B).
        let res = c.access(Address::new(0x40), AccessKind::Read);
        assert!(!res.hit);
        assert_eq!(res.fills.len(), 1);
        assert_eq!(res.fills[0].block, Address::new(0x40));
        assert_eq!(res.fills[0].bytes, 8);
        // Same sector hits; a different sector of the same block is a
        // sub-block miss that fetches 8 more bytes without eviction.
        assert!(c.access(Address::new(0x44), AccessKind::Read).hit);
        let res = c.access(Address::new(0x58), AccessKind::Read);
        assert!(!res.hit);
        assert_eq!(res.fills.len(), 1);
        assert_eq!(res.fills[0].block, Address::new(0x58));
        assert_eq!(res.fills[0].bytes, 8);
        assert!(
            res.fills[0].writeback.is_none(),
            "no eviction on sector miss"
        );
        // Now both sectors hit.
        assert!(c.access(Address::new(0x40), AccessKind::Read).hit);
        assert!(c.access(Address::new(0x58), AccessKind::Read).hit);
        assert_eq!(c.stats().sub_block_fills, 2);
    }

    #[test]
    fn sub_block_eviction_clears_whole_line() {
        let mut c = sub_blocked_cache();
        c.access(Address::new(0x40), AccessKind::Read); // sector 0
        c.access(Address::new(0x58), AccessKind::Read); // sector 3
                                                        // 0xC0 aliases 0x40 in a 4-set cache of 32B blocks (stride 128).
        c.access(Address::new(0xC0), AccessKind::Read);
        // The old line is fully gone: both sectors miss again.
        assert!(!c.access(Address::new(0x40), AccessKind::Read).hit);
        assert!(!c.access(Address::new(0x58), AccessKind::Read).hit);
    }

    #[test]
    fn sub_block_dirty_line_writes_back_whole_block() {
        let mut c = sub_blocked_cache();
        c.access(Address::new(0x40), AccessKind::Write); // dirty sector 0
        let res = c.access(Address::new(0xC0), AccessKind::Read); // evicts
        let wbs: Vec<_> = res.writebacks().collect();
        assert_eq!(wbs, vec![Address::new(0x40)]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn sub_block_config_validation() {
        let mut b = CacheConfig::builder();
        b.total(ByteSize::new(128)).block_bytes(32);
        assert!(b.sub_blocks(4).build().is_ok());
        assert!(b.sub_blocks(3).build().is_err(), "not a power of two");
        assert!(b.sub_blocks(16).build().is_err(), "sectors under a word");
        b.sub_blocks(2).fetch_blocks(2);
        assert!(b.build().is_err(), "sub-blocking excludes group fetch");
    }

    fn victim_cache(entries: u32) -> Cache {
        // 4 sets x 1 way x 16B blocks + victim buffer.
        let config = CacheConfig::builder()
            .total(ByteSize::new(64))
            .block_bytes(16)
            .victim_entries(entries)
            .build()
            .unwrap();
        Cache::new(config)
    }

    #[test]
    fn victim_buffer_catches_conflict_victims() {
        let mut c = victim_cache(2);
        let a = Address::new(0x00);
        let b = Address::new(0x40); // conflicts with a
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read); // a parks in the victim buffer
        let res = c.access(a, AccessKind::Read);
        assert!(!res.hit);
        assert!(res.victim_hit, "a should swap back from the buffer");
        assert!(res.fills.is_empty(), "no downstream fetch");
        assert_eq!(c.stats().victim_hits, 1);
        // The swap displaced b into the buffer; it swaps back too.
        let res = c.access(b, AccessKind::Read);
        assert!(res.victim_hit);
        assert_eq!(c.stats().victim_hits, 2);
        assert_eq!(c.stats().writebacks, 0, "clean blocks never write back");
    }

    #[test]
    fn victim_buffer_preserves_dirty_data() {
        let mut c = victim_cache(2);
        let a = Address::new(0x00);
        let b = Address::new(0x40);
        c.access(a, AccessKind::Write); // dirty a
        c.access(b, AccessKind::Read); // dirty a parks in buffer
        assert_eq!(c.stats().writebacks, 0, "buffered, not written back");
        let res = c.access(a, AccessKind::Read); // swap back
        assert!(res.victim_hit);
        assert!(c.is_dirty(a), "dirtiness travels through the buffer");
    }

    #[test]
    fn victim_buffer_ejection_writes_back_dirty_blocks() {
        let mut c = victim_cache(1);
        let a = Address::new(0x00);
        let b = Address::new(0x40);
        let d = Address::new(0x80); // all three conflict
        c.access(a, AccessKind::Write); // dirty a
        c.access(b, AccessKind::Read); // dirty a -> buffer
        let res = c.access(d, AccessKind::Read); // b -> buffer ejects a (dirty)
        let wbs: Vec<_> = res.writebacks().collect();
        assert_eq!(wbs, vec![a]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn victim_buffer_flushes_dirty_entries() {
        let mut c = victim_cache(2);
        c.access(Address::new(0x00), AccessKind::Write);
        c.access(Address::new(0x40), AccessKind::Read); // dirty 0x0 buffered
        let mut flushed = c.flush_dirty();
        flushed.sort();
        assert!(flushed.contains(&Address::new(0x00)), "{flushed:?}");
        assert!(c.flush_dirty().is_empty(), "flush clears dirty bits");
    }

    #[test]
    fn victim_config_validation() {
        let mut b = CacheConfig::builder();
        b.total(ByteSize::new(128)).block_bytes(32);
        assert!(b.victim_entries(4).build().is_ok());
        assert!(b.victim_entries(65).build().is_err());
        b.victim_entries(2).sub_blocks(2);
        assert!(b.build().is_err(), "victim + sub-blocking rejected");
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(128))
            .block_bytes(16)
            .ways(8)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        for i in 0..8u64 {
            // Addresses that would conflict badly in a direct-mapped cache.
            c.access(Address::new(i * 0x1000), AccessKind::Read);
        }
        assert_eq!(c.resident_blocks(), 8);
        for i in 0..8u64 {
            assert!(c.contains(Address::new(i * 0x1000)));
        }
    }
}

#[cfg(all(test, feature = "check-invariants"))]
mod invariant_tests {
    use super::*;
    use crate::geometry::ByteSize;

    fn warm_cache(ways: u32, policy: WritePolicy) -> Cache {
        let config = CacheConfig::builder()
            .total(ByteSize::new(64 * u64::from(ways)))
            .block_bytes(16)
            .ways(ways)
            .write_policy(policy)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        for i in 0..16u64 {
            c.access(Address::new(i * 16), AccessKind::Read);
        }
        c
    }

    #[test]
    fn healthy_cache_passes() {
        let mut c = warm_cache(2, WritePolicy::WriteBack);
        c.access(Address::new(0x20), AccessKind::Write);
        assert_eq!(c.verify_invariants(), Ok(()));
        assert_eq!(c.verify_invariants_at(Address::new(0x20)), Ok(()));
    }

    #[test]
    fn duplicate_tag_is_caught() {
        let mut c = warm_cache(2, WritePolicy::WriteBack);
        c.tags[1] = c.tags[0];
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("share tag"), "{err}");
    }

    #[test]
    fn duplicate_stamp_is_caught() {
        let mut c = warm_cache(2, WritePolicy::WriteBack);
        c.stamps[1] = c.stamps[0];
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("share stamp"), "{err}");
    }

    #[test]
    fn stamp_beyond_tick_is_caught() {
        let mut c = warm_cache(1, WritePolicy::WriteBack);
        c.stamps[0] = c.tick + 1;
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn dirty_invalid_line_is_caught() {
        let mut c = warm_cache(1, WritePolicy::WriteBack);
        c.flags[0] = DIRTY;
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("not valid"), "{err}");
    }

    #[test]
    fn dirty_line_in_write_through_cache_is_caught() {
        let mut c = warm_cache(1, WritePolicy::WriteThrough);
        c.flags[0] = VALID | DIRTY;
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("write-through"), "{err}");
    }

    #[test]
    fn empty_sector_mask_is_caught() {
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(32)
            .sub_blocks(2)
            .build()
            .unwrap();
        let mut c = Cache::new(config);
        c.access(Address::new(0x40), AccessKind::Read);
        let line = c.find(
            c.geom.set_index(Address::new(0x40)),
            c.geom.tag(Address::new(0x40)),
        );
        c.sub_masks[line.unwrap()] = 0;
        let err = c.verify_invariants().unwrap_err();
        assert!(err.contains("sector mask"), "{err}");
    }

    #[test]
    fn set_scoped_check_ignores_other_sets() {
        let mut c = warm_cache(1, WritePolicy::WriteBack);
        // Corrupt set 0; a set-scoped probe of another set stays clean.
        c.flags[0] = DIRTY;
        assert!(c.verify_set(1).is_ok());
        assert!(c.verify_set(0).is_err());
        assert!(c.verify_invariants_at(Address::new(0x10)).is_ok());
        assert!(c.verify_invariants_at(Address::new(0x00)).is_err());
    }

    #[test]
    fn state_summary_reports_occupancy() {
        let c = warm_cache(2, WritePolicy::WriteBack);
        let summary = c.state_summary();
        assert!(summary.contains("resident"), "{summary}");
    }
}
