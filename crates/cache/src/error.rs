//! Error type for cache configuration.

use std::error::Error;
use std::fmt;

/// An invalid cache configuration.
///
/// Produced by [`CacheGeometry::new`](crate::CacheGeometry::new) and
/// [`CacheConfigBuilder::build`](crate::CacheConfigBuilder::build) when a
/// requested organisation is not physically realisable (sizes that are not
/// powers of two, associativity that does not divide the block count, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("bad ways");
        assert!(e.to_string().contains("bad ways"));
        assert!(e.to_string().contains("invalid cache configuration"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
