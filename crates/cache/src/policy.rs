//! Replacement, write and prefetch policies.

use std::fmt;

/// Block replacement policy.
///
/// The paper's caches use LRU within a set; FIFO and Random are provided
/// for ablation studies (their miss ratios bracket LRU's for most
/// workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Least-recently-used within the set (the paper's policy).
    #[default]
    Lru,
    /// First-in-first-out within the set.
    Fifo,
    /// Uniform random victim.
    Random,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Replacement::Lru => "LRU",
            Replacement::Fifo => "FIFO",
            Replacement::Random => "random",
        })
    }
}

/// Write-hit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Dirty data stays in the cache until eviction (the paper's policy at
    /// every level).
    #[default]
    WriteBack,
    /// Every write is propagated downstream immediately; lines are never
    /// dirty.
    WriteThrough,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WritePolicy::WriteBack => "write-back",
            WritePolicy::WriteThrough => "write-through",
        })
    }
}

/// Write-miss policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// Fetch the block on a write miss (the paper's policy, natural with
    /// write-back caches).
    #[default]
    WriteAllocate,
    /// Forward the write downstream without filling the block (natural
    /// with write-through caches).
    NoWriteAllocate,
}

impl fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AllocPolicy::WriteAllocate => "write-allocate",
            AllocPolicy::NoWriteAllocate => "no-write-allocate",
        })
    }
}

/// Hardware prefetch policy.
///
/// The paper's simulator supports prefetching (§2); the base machine does
/// not enable it, but [`Prefetch::NextBlock`] is provided for extension
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Prefetch {
    /// No prefetching (the base machine).
    #[default]
    None,
    /// On a demand miss, also fetch the sequentially next block.
    NextBlock,
}

impl fmt::Display for Prefetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Prefetch::None => "none",
            Prefetch::NextBlock => "next-block",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(Replacement::default(), Replacement::Lru);
        assert_eq!(WritePolicy::default(), WritePolicy::WriteBack);
        assert_eq!(AllocPolicy::default(), AllocPolicy::WriteAllocate);
        assert_eq!(Prefetch::default(), Prefetch::None);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Replacement::Lru.to_string(), "LRU");
        assert_eq!(Replacement::Fifo.to_string(), "FIFO");
        assert_eq!(Replacement::Random.to_string(), "random");
        assert_eq!(WritePolicy::WriteBack.to_string(), "write-back");
        assert_eq!(WritePolicy::WriteThrough.to_string(), "write-through");
        assert_eq!(AllocPolicy::WriteAllocate.to_string(), "write-allocate");
        assert_eq!(
            AllocPolicy::NoWriteAllocate.to_string(),
            "no-write-allocate"
        );
        assert_eq!(Prefetch::None.to_string(), "none");
        assert_eq!(Prefetch::NextBlock.to_string(), "next-block");
    }
}
