//! Property tests for the binary trace codecs: arbitrary record
//! sequences must round-trip bit-exact through both formats, and any
//! header corruption must surface as an error — never as a
//! wrong-but-`Ok` trace.
//!
//! Deterministic xoshiro-seeded cases stand in for a property-testing
//! framework (the workspace has no external dependencies); a failure
//! message names the case number so it can be replayed.

use mlc_trace::binary::{read_binary, write_binary, write_compressed};
use mlc_trace::synth::Xoshiro;
use mlc_trace::{AccessKind, TraceRecord};

const HEADER_LEN: usize = 16;

fn rng_for_case(case: u64) -> Xoshiro {
    Xoshiro::seed_from_u64(0xB1A4 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Arbitrary record sequences biased toward the codec's edge cases:
/// duplicate addresses (a small reuse pool), runs of one kind (delta
/// bases go stale for the others), zero and `u64::MAX` addresses
/// (extreme zigzag deltas), and the empty trace.
fn arbitrary_records(rng: &mut Xoshiro) -> Vec<TraceRecord> {
    let n = rng.next_below(180) as usize;
    let pool: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
    let mut kind = AccessKind::InstructionFetch;
    (0..n)
        .map(|_| {
            // 50%: keep the previous kind, making long same-kind runs.
            if rng.next_bool(0.5) {
                kind = AccessKind::ALL[rng.next_below(3) as usize];
            }
            let addr = match rng.next_below(10) {
                0 => 0,
                1 => u64::MAX,
                2..=5 => pool[rng.next_below(8) as usize],
                _ => rng.next_u64(),
            };
            TraceRecord::new(kind, addr.into())
        })
        .collect()
}

#[test]
fn fixed_width_round_trips_arbitrary_records() {
    for case in 0..200u64 {
        let recs = arbitrary_records(&mut rng_for_case(case));
        let mut buf = Vec::new();
        write_binary(&mut buf, &recs).unwrap_or_else(|e| panic!("case {case}: write: {e}"));
        let back = read_binary(buf.as_slice()).unwrap_or_else(|e| panic!("case {case}: read: {e}"));
        assert_eq!(back, recs, "case {case}: v1 round trip");
    }
}

#[test]
fn compressed_round_trips_arbitrary_records() {
    for case in 0..200u64 {
        let recs = arbitrary_records(&mut rng_for_case(0x5EED ^ case));
        let mut buf = Vec::new();
        write_compressed(&mut buf, &recs).unwrap_or_else(|e| panic!("case {case}: write: {e}"));
        let back = read_binary(buf.as_slice()).unwrap_or_else(|e| panic!("case {case}: read: {e}"));
        assert_eq!(back, recs, "case {case}: v2 round trip");
    }
}

/// Every single-byte header mutation must be rejected. The magic and
/// version fields are checked directly; everything else (version flips
/// between the two supported codecs, record-count edits, check-field
/// corruption) is caught by the header check or by the
/// truncated/trailing payload checks.
#[test]
fn every_mutated_header_byte_errors() {
    for case in 0..40u64 {
        let mut rng = rng_for_case(0xC0DE ^ case);
        let recs = arbitrary_records(&mut rng);
        for compressed in [false, true] {
            let mut buf = Vec::new();
            if compressed {
                write_compressed(&mut buf, &recs).unwrap();
            } else {
                write_binary(&mut buf, &recs).unwrap();
            }
            for idx in 0..HEADER_LEN {
                for mutation in [buf[idx] ^ 0x01, buf[idx] ^ 0x80, !buf[idx], buf[idx] ^ 0x03] {
                    let mut bad = buf.clone();
                    bad[idx] = mutation;
                    assert!(
                        read_binary(bad.as_slice()).is_err(),
                        "case {case} compressed={compressed}: header byte {idx} \
                         {:#04x} -> {mutation:#04x} was accepted",
                        buf[idx]
                    );
                }
            }
        }
    }
}

/// Every truncation of the header — and of the payload — must be an
/// error, never a shortened-but-`Ok` trace.
#[test]
fn every_truncation_errors() {
    for case in 0..40u64 {
        let mut rng = rng_for_case(0x7120 ^ case);
        let mut recs = arbitrary_records(&mut rng);
        if recs.is_empty() {
            recs.push(TraceRecord::ifetch(rng.next_u64()));
        }
        for compressed in [false, true] {
            let mut buf = Vec::new();
            if compressed {
                write_compressed(&mut buf, &recs).unwrap();
            } else {
                write_binary(&mut buf, &recs).unwrap();
            }
            for len in 0..HEADER_LEN {
                assert!(
                    read_binary(&buf[..len]).is_err(),
                    "case {case} compressed={compressed}: {len}-byte header prefix accepted"
                );
            }
            // A non-empty payload truncated anywhere must also fail.
            for len in [buf.len() - 1, HEADER_LEN + (buf.len() - HEADER_LEN) / 2] {
                assert!(
                    read_binary(&buf[..len]).is_err(),
                    "case {case} compressed={compressed}: truncation to {len} bytes accepted"
                );
            }
        }
    }
}

/// Appending garbage after a valid trace of either version must fail
/// with the excess reported, regardless of what the garbage looks like.
#[test]
fn trailing_garbage_always_errors() {
    for case in 0..40u64 {
        let mut rng = rng_for_case(0x9A11 ^ case);
        let recs = arbitrary_records(&mut rng);
        let extra = 1 + rng.next_below(32) as usize;
        for compressed in [false, true] {
            let mut buf = Vec::new();
            if compressed {
                write_compressed(&mut buf, &recs).unwrap();
            } else {
                write_binary(&mut buf, &recs).unwrap();
            }
            for _ in 0..extra {
                buf.push(rng.next_u64() as u8);
            }
            let err = read_binary(buf.as_slice()).unwrap_err();
            assert!(
                err.to_string().contains("trailing"),
                "case {case} compressed={compressed}: {err}"
            );
        }
    }
}
