//! Equivalence property suite for the zero-copy slice decoder: over
//! every-offset truncations and bit-flips of both binary layouts, the
//! slice path must be indistinguishable from the `Read`-based reader —
//! identical records, identical error strings, identical quarantine
//! sidecars and ingest reports, identical record digests. The streaming
//! iterator must match the bulk decoder under the strict policy too.

use mlc_trace::binary::{read_binary_with, write_binary, write_compressed};
use mlc_trace::slice::{read_binary_slice_with, SliceRecords};
use mlc_trace::{FaultPolicy, TraceRecord};

/// A small but representative trace: all three kinds, delta extremes.
fn sample() -> Vec<TraceRecord> {
    let mut recs = Vec::new();
    for i in 0..8u64 {
        recs.push(TraceRecord::ifetch(i * 4));
        recs.push(TraceRecord::read(0x1000 + i * 64));
        recs.push(TraceRecord::write(u64::MAX - i));
    }
    recs
}

/// The two binary layouts the slice decoder handles (`.din` has no
/// slice path — it is line-oriented text).
fn encodings() -> Vec<(&'static str, Vec<u8>)> {
    let recs = sample();
    let mut v1 = Vec::new();
    write_binary(&mut v1, &recs).unwrap();
    let mut v2 = Vec::new();
    write_compressed(&mut v2, &recs).unwrap();
    vec![("v1", v1), ("v2", v2)]
}

/// The workspace's trace content digest (FNV-1a over din label byte +
/// little-endian address per record), inlined so this suite needs no
/// reverse dependency on `mlc-obs`.
fn digest(records: &[TraceRecord]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x100_0000_01b3);
    };
    for rec in records {
        eat(rec.kind.din_label());
        for b in rec.addr.get().to_le_bytes() {
            eat(b);
        }
    }
    state
}

type Outcome = (
    Result<(Vec<TraceRecord>, u64, bool), String>,
    String, // quarantine sidecar contents
);

fn via_read(bytes: &[u8], policy: FaultPolicy) -> Outcome {
    let mut sidecar = Vec::new();
    let result = read_binary_with(bytes, policy, Some(&mut sidecar))
        .map(|(recs, report)| (recs, report.quarantined, report.truncated))
        .map_err(|e| e.to_string());
    (result, String::from_utf8(sidecar).unwrap())
}

fn via_slice(bytes: &[u8], policy: FaultPolicy) -> Outcome {
    let mut sidecar = Vec::new();
    let result = read_binary_slice_with(bytes, policy, Some(&mut sidecar))
        .map(|(recs, report)| (recs, report.quarantined, report.truncated))
        .map_err(|e| e.to_string());
    (result, String::from_utf8(sidecar).unwrap())
}

/// Both paths on the same bytes must agree on everything observable.
fn assert_equivalent(context: &str, bytes: &[u8], policy: FaultPolicy) {
    let (read_out, read_sidecar) = via_read(bytes, policy);
    let (slice_out, slice_sidecar) = via_slice(bytes, policy);
    match (&read_out, &slice_out) {
        (Ok((r_recs, r_quar, r_trunc)), Ok((s_recs, s_quar, s_trunc))) => {
            assert_eq!(r_recs, s_recs, "{context}: records diverge");
            assert_eq!(digest(r_recs), digest(s_recs), "{context}: digests diverge");
            assert_eq!(r_quar, s_quar, "{context}: quarantined counts diverge");
            assert_eq!(r_trunc, s_trunc, "{context}: truncated flags diverge");
        }
        (Err(r_err), Err(s_err)) => {
            assert_eq!(r_err, s_err, "{context}: error strings diverge");
        }
        _ => panic!("{context}: outcome kinds diverge (read: {read_out:?}, slice: {slice_out:?})"),
    }
    assert_eq!(read_sidecar, slice_sidecar, "{context}: sidecars diverge");
}

const POLICIES: [FaultPolicy; 3] = [
    FaultPolicy::Fail,
    FaultPolicy::Skip { budget: 1 },
    FaultPolicy::Skip { budget: 64 },
];

#[test]
fn clean_payloads_decode_identically() {
    for (name, bytes) in encodings() {
        for policy in POLICIES {
            assert_equivalent(&format!("{name} clean {policy:?}"), &bytes, policy);
        }
        // And both paths actually return the written records.
        let (out, _) = via_slice(&bytes, FaultPolicy::Fail);
        assert_eq!(out.unwrap().0, sample(), "{name}: wrong records");
    }
}

#[test]
fn truncation_at_every_offset_is_identical() {
    for (name, bytes) in encodings() {
        for cut in 0..=bytes.len() {
            for policy in POLICIES {
                assert_equivalent(
                    &format!("{name} cut at {cut} under {policy:?}"),
                    &bytes[..cut],
                    policy,
                );
            }
        }
    }
}

#[test]
fn bit_flips_at_every_offset_are_identical() {
    for (name, bytes) in encodings() {
        for offset in 0..bytes.len() {
            for mask in [0x01u8, 0x80] {
                let mut flipped = bytes.clone();
                flipped[offset] ^= mask;
                for policy in POLICIES {
                    assert_equivalent(
                        &format!("{name} flip {mask:#x} at {offset} under {policy:?}"),
                        &flipped,
                        policy,
                    );
                }
            }
        }
    }
}

#[test]
fn trailing_garbage_is_identical() {
    for (name, bytes) in encodings() {
        for extra in [1usize, 7] {
            let mut long = bytes.clone();
            long.extend(std::iter::repeat_n(0xaau8, extra));
            for policy in POLICIES {
                assert_equivalent(
                    &format!("{name} with {extra} trailing bytes under {policy:?}"),
                    &long,
                    policy,
                );
            }
        }
    }
}

/// Drains a streaming iterator the way a strict consumer would: records
/// until the first error, which ends the stream.
fn drain(bytes: &[u8]) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for item in SliceRecords::new(bytes).map_err(|e| e.to_string())? {
        records.push(item.map_err(|e| e.to_string())?);
    }
    Ok(records)
}

#[test]
fn streaming_iterator_matches_strict_bulk_decode() {
    for (name, bytes) in encodings() {
        // Clean, truncated at every offset, and bit-flipped payloads
        // must all stream to the same outcome as the strict bulk read.
        let mut cases: Vec<Vec<u8>> = vec![bytes.clone()];
        for cut in 0..bytes.len() {
            cases.push(bytes[..cut].to_vec());
        }
        for offset in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 0x80;
            cases.push(flipped);
        }
        for (i, case) in cases.iter().enumerate() {
            let (bulk, _) = via_read(case, FaultPolicy::Fail);
            let bulk = bulk.map(|(recs, _, _)| recs);
            assert_eq!(drain(case), bulk, "{name}: case {i} diverges");
        }
    }
}
