//! Adversarial fault-injection tests for every trace reader: the
//! [`FaultInjector`] truncates, bit-flips and errors the byte stream at
//! every offset, and the readers — strict and degraded alike — must
//! never panic, never loop, and fail typed where the format can detect
//! the damage.

use mlc_trace::binary::{read_binary, read_binary_with, write_binary, write_compressed};
use mlc_trace::din::{read_din, read_din_with, write_din};
use mlc_trace::{FaultInjector, FaultPlan, FaultPolicy, TraceError, TraceRecord};

/// A small but representative trace: all three kinds, delta extremes.
fn sample() -> Vec<TraceRecord> {
    let mut recs = Vec::new();
    for i in 0..8u64 {
        recs.push(TraceRecord::ifetch(i * 4));
        recs.push(TraceRecord::read(0x1000 + i * 64));
        recs.push(TraceRecord::write(u64::MAX - i));
    }
    recs
}

fn encodings() -> Vec<(&'static str, Vec<u8>)> {
    let recs = sample();
    let mut din = Vec::new();
    write_din(&mut din, recs.iter().copied()).unwrap();
    let mut v1 = Vec::new();
    write_binary(&mut v1, &recs).unwrap();
    let mut v2 = Vec::new();
    write_compressed(&mut v2, &recs).unwrap();
    vec![("din", din), ("v1", v1), ("v2", v2)]
}

fn read_strict(name: &str, reader: FaultInjector<&[u8]>) -> Result<Vec<TraceRecord>, TraceError> {
    if name == "din" {
        read_din(reader)
    } else {
        read_binary(reader)
    }
}

fn read_degraded(
    name: &str,
    reader: FaultInjector<&[u8]>,
    policy: FaultPolicy,
) -> Result<Vec<TraceRecord>, TraceError> {
    if name == "din" {
        read_din_with(reader, policy, None).map(|(r, _)| r)
    } else {
        read_binary_with(reader, policy, None).map(|(r, _)| r)
    }
}

#[test]
fn truncation_at_every_offset_never_panics() {
    for (name, bytes) in encodings() {
        for cut in 0..bytes.len() as u64 {
            let strict = read_strict(
                name,
                FaultInjector::new(bytes.as_slice(), FaultPlan::truncate(cut)),
            );
            // The binary formats declare their record count, so any cut
            // short of the full payload must be detected.
            if name != "din" {
                assert!(strict.is_err(), "{name}: cut at {cut} accepted strictly");
            }
            // Degraded mode with a budget absorbs a truncated tail but
            // must still fail typed when the header itself is cut.
            let degraded = read_degraded(
                name,
                FaultInjector::new(bytes.as_slice(), FaultPlan::truncate(cut)),
                FaultPolicy::Skip { budget: 1 },
            );
            match degraded {
                Ok(recs) => assert!(
                    recs.len() <= sample().len(),
                    "{name}: cut at {cut} grew the trace"
                ),
                Err(e) => {
                    let s = e.to_string();
                    assert!(
                        s.contains("header") || s.contains("budget") || s.contains("line"),
                        "{name}: cut at {cut}: unexpected degraded error {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn bit_flips_at_every_offset_never_panic() {
    for (name, bytes) in encodings() {
        for idx in 0..bytes.len() as u64 {
            for mask in [0x01u8, 0x80] {
                // Strict: any outcome but a panic or a *longer* trace is
                // in-contract (payload bytes are not checksummed).
                if let Ok(recs) = read_strict(
                    name,
                    FaultInjector::new(bytes.as_slice(), FaultPlan::flip(idx, mask)),
                ) {
                    assert!(recs.len() <= sample().len(), "{name}: flip at {idx} grew");
                }
                // Degraded with a generous budget: same safety bar.
                if let Ok(recs) = read_degraded(
                    name,
                    FaultInjector::new(bytes.as_slice(), FaultPlan::flip(idx, mask)),
                    FaultPolicy::Skip { budget: 1_000 },
                ) {
                    assert!(recs.len() <= sample().len(), "{name}: flip at {idx} grew");
                }
            }
        }
    }
}

#[test]
fn io_errors_at_every_offset_are_always_fatal() {
    for (name, bytes) in encodings() {
        for at in 0..bytes.len() as u64 {
            let strict = read_strict(
                name,
                FaultInjector::new(bytes.as_slice(), FaultPlan::io_error(at)),
            );
            assert!(
                strict.is_err(),
                "{name}: I/O error at {at} swallowed strictly"
            );
            let degraded = read_degraded(
                name,
                FaultInjector::new(bytes.as_slice(), FaultPlan::io_error(at)),
                FaultPolicy::Skip { budget: u64::MAX },
            );
            assert!(
                degraded.is_err(),
                "{name}: I/O error at {at} swallowed under skip"
            );
        }
    }
}

#[test]
fn clean_streams_pass_through_an_empty_fault_plan() {
    for (name, bytes) in encodings() {
        let recs = read_strict(
            name,
            FaultInjector::new(bytes.as_slice(), FaultPlan::default()),
        )
        .unwrap_or_else(|e| panic!("{name}: clean read failed: {e}"));
        assert_eq!(recs, sample(), "{name}");
    }
}
