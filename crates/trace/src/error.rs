//! Error types for trace parsing and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Error produced while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in a Dinero `.din` trace.
    ParseDin {
        /// 1-based line number of the offending line.
        line: u64,
        /// Human-readable description of what went wrong.
        reason: String,
    },
    /// A malformed binary trace: bad magic, version or truncated payload.
    ParseBinary(String),
    /// A statistics request over an invalid block granularity (zero or
    /// not a power of two).
    BadBlockSize(u64),
    /// A degraded-mode read quarantined more records than its
    /// [`FaultPolicy::Skip`](crate::FaultPolicy) budget allows.
    FaultBudget {
        /// The budget that was exceeded.
        budget: u64,
        /// The error that broke the budget, rendered.
        last: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::ParseDin { line, reason } => {
                write!(f, "malformed din trace at line {line}: {reason}")
            }
            TraceError::ParseBinary(reason) => {
                write!(f, "malformed binary trace: {reason}")
            }
            TraceError::BadBlockSize(bytes) => {
                write!(f, "block size must be a power of two bytes, got {bytes}")
            }
            TraceError::FaultBudget { budget, last } => {
                write!(
                    f,
                    "fault budget exceeded: more than {budget} malformed records (last: {last})"
                )
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_din() {
        let e = TraceError::ParseDin {
            line: 7,
            reason: "bad label".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("bad label"));
    }

    #[test]
    fn display_binary() {
        let e = TraceError::ParseBinary("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn display_bad_block_size() {
        let e = TraceError::BadBlockSize(24);
        let s = e.to_string();
        assert!(s.contains("power of two"));
        assert!(s.contains("24"));
    }

    #[test]
    fn display_fault_budget() {
        let e = TraceError::FaultBudget {
            budget: 5,
            last: "bad kind 7".into(),
        };
        let s = e.to_string();
        assert!(s.contains("more than 5"));
        assert!(s.contains("bad kind 7"));
    }

    #[test]
    fn source_chain() {
        let e = TraceError::from(io::Error::other("inner"));
        assert!(e.source().is_some());
        let e2 = TraceError::ParseBinary("x".into());
        assert!(e2.source().is_none());
    }
}
