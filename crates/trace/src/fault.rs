//! Degraded-mode ingestion policy and fault injection.
//!
//! Production trace archives are not pristine: a copy truncates, a disk
//! flips a bit, a concatenation script drops half a record. The strict
//! readers ([`crate::din::read_din`], [`crate::binary::read_binary`])
//! fail on the first malformed record — correct for provenance, fatal
//! for a sweep that only needs 99.999% of a billion references. This
//! module supplies the middle ground:
//!
//! * [`FaultPolicy`] — `Fail` (the strict behaviour) or
//!   `Skip { budget }`, which quarantines malformed records to a
//!   sidecar and fails typed ([`TraceError::FaultBudget`]) only once
//!   more than `budget` records have been dropped.
//! * [`IngestReport`] — how much was quarantined, and whether the input
//!   ended early.
//! * [`FaultInjector`] / [`FaultPlan`] — a [`Read`] adapter that
//!   injects bit-flips, truncation, and mid-stream I/O errors at
//!   configurable byte offsets, so every reader's failure behaviour is
//!   testable without hand-crafting corrupt files.
//!
//! What is *recoverable* is format-specific (see `read_din_with` /
//! `read_binary_with` in the format modules): malformed din lines and
//! bad v1/v2 record kinds are skippable because the surrounding records
//! still frame correctly; header corruption and undecodable v2 varints
//! are always fatal because nothing after them can be trusted.

use std::fmt::Write as _;
use std::io::{self, Read, Write};

use crate::error::TraceError;

/// What to do when a reader meets a malformed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Fail on the first malformed record (the strict readers).
    Fail,
    /// Skip malformed records, quarantining each, until more than
    /// `budget` have been dropped — then fail typed.
    Skip {
        /// Maximum number of records that may be quarantined.
        budget: u64,
    },
}

impl FaultPolicy {
    /// Parses the CLI spelling: `fail`, or `skip:N`.
    ///
    /// # Errors
    ///
    /// Returns a description of the expected forms.
    pub fn parse(s: &str) -> Result<FaultPolicy, String> {
        if s == "fail" {
            return Ok(FaultPolicy::Fail);
        }
        if let Some(n) = s.strip_prefix("skip:") {
            return n
                .parse::<u64>()
                .map(|budget| FaultPolicy::Skip { budget })
                .map_err(|_| format!("invalid fault budget {n:?} (expected skip:N)"));
        }
        Err(format!(
            "invalid fault policy {s:?} (expected 'fail' or 'skip:N')"
        ))
    }
}

/// What a degraded-mode read dropped on the floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Malformed records skipped and written to the quarantine sidecar.
    pub quarantined: u64,
    /// Whether the input ended before its declared end (binary formats
    /// only; the missing tail counts as one quarantined record).
    pub truncated: bool,
}

/// Shared bookkeeping for the `*_with` readers: quarantine one
/// malformed record under the policy, or fail.
///
/// `describe` is the human-readable sidecar line (without newline);
/// `error` is what `Fail` propagates.
pub(crate) fn absorb_fault(
    policy: FaultPolicy,
    report: &mut IngestReport,
    quarantine: &mut Option<&mut dyn Write>,
    describe: &str,
    error: TraceError,
) -> Result<(), TraceError> {
    match policy {
        FaultPolicy::Fail => Err(error),
        FaultPolicy::Skip { budget } => {
            report.quarantined += 1;
            if report.quarantined > budget {
                return Err(TraceError::FaultBudget {
                    budget,
                    last: error.to_string(),
                });
            }
            if let Some(w) = quarantine {
                writeln!(w, "{describe}").map_err(TraceError::Io)?;
            }
            Ok(())
        }
    }
}

/// Renders bytes as lowercase hex for quarantine sidecar lines.
pub(crate) fn hex_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// A byte-level fault plan for [`FaultInjector`]. Offsets are absolute
/// positions in the wrapped stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(offset, mask)` pairs: the byte at `offset` is XOR'd with
    /// `mask` as it passes through.
    pub flips: Vec<(u64, u8)>,
    /// Report end-of-stream after this many bytes.
    pub truncate_at: Option<u64>,
    /// Return an I/O error when a read reaches this offset.
    pub error_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that flips `mask` into the byte at `offset`.
    pub fn flip(offset: u64, mask: u8) -> FaultPlan {
        FaultPlan {
            flips: vec![(offset, mask)],
            ..FaultPlan::default()
        }
    }

    /// A plan that truncates the stream at `offset`.
    pub fn truncate(offset: u64) -> FaultPlan {
        FaultPlan {
            truncate_at: Some(offset),
            ..FaultPlan::default()
        }
    }

    /// A plan that fails with an I/O error at `offset`.
    pub fn io_error(offset: u64) -> FaultPlan {
        FaultPlan {
            error_at: Some(offset),
            ..FaultPlan::default()
        }
    }
}

/// A [`Read`] adapter that corrupts the wrapped stream according to a
/// [`FaultPlan`] — the adversarial half of the fault-tolerance tests.
///
/// # Examples
///
/// ```
/// use std::io::Read;
/// use mlc_trace::{FaultInjector, FaultPlan};
///
/// let mut out = Vec::new();
/// FaultInjector::new(&b"hello"[..], FaultPlan::flip(1, 0x20))
///     .read_to_end(&mut out)
///     .unwrap();
/// assert_eq!(out, b"hEllo");
///
/// let mut out = Vec::new();
/// FaultInjector::new(&b"hello"[..], FaultPlan::truncate(2))
///     .read_to_end(&mut out)
///     .unwrap();
/// assert_eq!(out, b"he");
///
/// let mut out = Vec::new();
/// let err = FaultInjector::new(&b"hello"[..], FaultPlan::io_error(3))
///     .read_to_end(&mut out)
///     .unwrap_err();
/// assert_eq!(out, b"hel");
/// assert!(err.to_string().contains("injected"));
/// ```
#[derive(Debug)]
pub struct FaultInjector<R> {
    inner: R,
    plan: FaultPlan,
    offset: u64,
}

impl<R: Read> FaultInjector<R> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultInjector {
            inner,
            plan,
            offset: 0,
        }
    }

    /// Bytes delivered so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl<R: Read> Read for FaultInjector<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(t) = self.plan.truncate_at {
            if self.offset >= t {
                return Ok(0);
            }
        }
        if let Some(e) = self.plan.error_at {
            if self.offset >= e {
                return Err(io::Error::other("injected I/O fault"));
            }
        }
        // Bound the read so truncation and error offsets land exactly.
        let mut limit = buf.len() as u64;
        if let Some(t) = self.plan.truncate_at {
            limit = limit.min(t - self.offset);
        }
        if let Some(e) = self.plan.error_at {
            limit = limit.min(e - self.offset);
        }
        let n = self.inner.read(&mut buf[..limit as usize])?;
        for (off, mask) in &self.plan.flips {
            if *off >= self.offset && *off < self.offset + n as u64 {
                buf[(*off - self.offset) as usize] ^= mask;
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_cli_forms() {
        assert_eq!(FaultPolicy::parse("fail"), Ok(FaultPolicy::Fail));
        assert_eq!(
            FaultPolicy::parse("skip:3"),
            Ok(FaultPolicy::Skip { budget: 3 })
        );
        assert_eq!(
            FaultPolicy::parse("skip:0"),
            Ok(FaultPolicy::Skip { budget: 0 })
        );
        assert!(FaultPolicy::parse("skip:").is_err());
        assert!(FaultPolicy::parse("skip:-1").is_err());
        assert!(FaultPolicy::parse("tolerant").is_err());
    }

    #[test]
    fn injector_flips_exactly_one_byte_across_read_boundaries() {
        // Read through a 1-byte buffer so the flip offset crosses
        // multiple read() calls.
        let data: Vec<u8> = (0..64).collect();
        let mut inj = FaultInjector::new(data.as_slice(), FaultPlan::flip(37, 0xff));
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        while inj.read(&mut byte).unwrap() == 1 {
            out.push(byte[0]);
        }
        for (i, &b) in out.iter().enumerate() {
            let want = if i == 37 { 37u8 ^ 0xff } else { i as u8 };
            assert_eq!(b, want, "byte {i}");
        }
        assert_eq!(inj.offset(), 64);
    }

    #[test]
    fn injector_truncates_mid_buffer() {
        let data = [1u8; 100];
        let mut inj = FaultInjector::new(&data[..], FaultPlan::truncate(33));
        let mut out = Vec::new();
        inj.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 33);
    }

    #[test]
    fn injector_errors_at_offset_after_delivering_prefix() {
        let data = [2u8; 100];
        let mut inj = FaultInjector::new(&data[..], FaultPlan::io_error(10));
        let mut out = Vec::new();
        let err = inj.read_to_end(&mut out).unwrap_err();
        assert_eq!(out.len(), 10);
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn absorb_fault_budget_semantics() {
        let mut report = IngestReport::default();
        let mut sidecar: Vec<u8> = Vec::new();
        {
            let mut q: Option<&mut dyn Write> = Some(&mut sidecar);
            let e = || TraceError::ParseBinary("x".into());
            let policy = FaultPolicy::Skip { budget: 2 };
            assert!(absorb_fault(policy, &mut report, &mut q, "one", e()).is_ok());
            assert!(absorb_fault(policy, &mut report, &mut q, "two", e()).is_ok());
            let third = absorb_fault(policy, &mut report, &mut q, "three", e());
            assert!(matches!(
                third,
                Err(TraceError::FaultBudget { budget: 2, .. })
            ));
        }
        assert_eq!(report.quarantined, 3);
        // The record that breaks the budget is not quarantined: the read
        // is abandoned, not continued.
        assert_eq!(String::from_utf8(sidecar).unwrap(), "one\ntwo\n");
    }

    #[test]
    fn fail_policy_propagates_immediately() {
        let mut report = IngestReport::default();
        let mut q: Option<&mut dyn Write> = None;
        let r = absorb_fault(
            FaultPolicy::Fail,
            &mut report,
            &mut q,
            "d",
            TraceError::ParseBinary("boom".into()),
        );
        assert!(matches!(r, Err(TraceError::ParseBinary(_))));
        assert_eq!(report.quarantined, 0);
    }
}
