//! Trace sources: a common abstraction over in-memory traces, file readers
//! and synthetic generators.

use crate::record::TraceRecord;

/// A source of trace records.
///
/// All simulators in this workspace consume a `TraceSource`. Any
/// `Iterator<Item = TraceRecord>` is a `TraceSource` via the blanket impl,
/// so in-memory vectors, file readers and synthetic generators can all be
/// fed to a simulator directly.
///
/// # Examples
///
/// ```
/// use mlc_trace::{TraceRecord, TraceSource};
///
/// let records = vec![TraceRecord::ifetch(0), TraceRecord::read(64)];
/// let mut source = records.into_iter();
/// assert_eq!(source.next_record(), Some(TraceRecord::ifetch(0)));
/// assert_eq!(source.next_record(), Some(TraceRecord::read(64)));
/// assert_eq!(source.next_record(), None);
/// ```
pub trait TraceSource {
    /// Produces the next record, or `None` when the trace is exhausted.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Collects up to `n` records into a vector.
    ///
    /// Useful for materialising a prefix of an infinite synthetic source.
    fn take_records(&mut self, n: usize) -> Vec<TraceRecord>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_record() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Adapts this source into a standard [`Iterator`].
    fn into_iter_records(self) -> IntoIterRecords<Self>
    where
        Self: Sized,
    {
        IntoIterRecords { source: self }
    }
}

impl<I> TraceSource for I
where
    I: Iterator<Item = TraceRecord>,
{
    #[inline]
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.next()
    }
}

/// Iterator adapter returned by [`TraceSource::into_iter_records`].
#[derive(Debug, Clone)]
pub struct IntoIterRecords<S> {
    source: S,
}

impl<S: TraceSource> Iterator for IntoIterRecords<S> {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        self.source.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn iterator_blanket_impl() {
        let v = vec![TraceRecord::ifetch(0), TraceRecord::write(4)];
        let mut s = v.clone().into_iter();
        assert_eq!(s.next_record(), Some(v[0]));
        assert_eq!(s.next_record(), Some(v[1]));
        assert_eq!(s.next_record(), None);
    }

    #[test]
    fn take_records_stops_at_end() {
        let v = vec![TraceRecord::ifetch(0); 3];
        let mut s = v.into_iter();
        let taken = s.take_records(10);
        assert_eq!(taken.len(), 3);
    }

    #[test]
    fn take_records_respects_limit() {
        let v = vec![TraceRecord::ifetch(0); 10];
        let mut s = v.into_iter();
        assert_eq!(s.take_records(4).len(), 4);
        assert_eq!(s.take_records(100).len(), 6);
    }

    #[test]
    fn into_iter_records_round_trips() {
        let v = vec![
            TraceRecord::ifetch(0),
            TraceRecord::read(8),
            TraceRecord::write(16),
        ];
        let collected: Vec<_> = v.clone().into_iter().into_iter_records().collect();
        assert_eq!(collected, v);
    }
}
