//! Memory reference traces for cache hierarchy simulation.
//!
//! This crate provides everything the `mlc` workspace needs to *obtain* a
//! stream of memory references:
//!
//! * [`TraceRecord`] / [`AccessKind`] / [`Address`] — the reference model.
//! * [`din`] and [`binary`] — trace file formats (the classic Dinero text
//!   format and a compact binary format).
//! * [`synth`] — seeded synthetic workload generators reproducing the
//!   statistical properties of the ISCA 1989 paper's eight
//!   multiprogramming traces (see DESIGN.md §4 for the substitution
//!   argument).
//! * [`TraceStats`] — descriptive statistics for validating workloads.
//! * [`stackdist`] — one-pass Mattson LRU stack-distance analysis, giving
//!   the whole miss-ratio-versus-size curve of a trace at once.
//! * [`fault`] — degraded-mode ingestion ([`FaultPolicy`], quarantine
//!   sidecars, [`IngestReport`]) and a fault-injecting [`Read`](std::io::Read)
//!   adapter ([`FaultInjector`]) for adversarial reader tests.
//!
//! # Examples
//!
//! Generate a small multiprogramming workload and inspect its mix:
//!
//! ```
//! use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
//! use mlc_trace::TraceStats;
//!
//! let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(42))
//!     .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
//! let records = gen.generate_records(10_000);
//! let stats = TraceStats::from_records(records.iter().copied(), 16)?;
//! assert!(stats.ifetches > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Round-trip a trace through the Dinero text format:
//!
//! ```
//! use mlc_trace::{din, TraceRecord};
//!
//! let trace = vec![TraceRecord::ifetch(0x400), TraceRecord::read(0x1a40)];
//! let mut buf = Vec::new();
//! din::write_din(&mut buf, trace.iter().copied())?;
//! assert_eq!(din::read_din(buf.as_slice())?, trace);
//! # Ok::<(), mlc_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binary;
pub mod din;
mod error;
pub mod fault;
mod record;
pub mod slice;
pub mod stackdist;
mod stats;
mod stream;
pub mod synth;

pub use error::TraceError;
pub use fault::{FaultInjector, FaultPlan, FaultPolicy, IngestReport};
pub use record::{AccessKind, Address, TraceRecord};
pub use stats::TraceStats;
pub use stream::{IntoIterRecords, TraceSource};
