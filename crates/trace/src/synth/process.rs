//! A single-process synthetic reference generator.
//!
//! Produces a stream of CPU *cycles* matching the paper's RISC-like CPU
//! model (§2): every cycle contains one instruction fetch, and a
//! configurable fraction (~50 %) also contain a data reference, of which a
//! configurable fraction (~35 %) are reads.
//!
//! Three reference mechanisms combine to mimic the paper's
//! multiprogramming traces:
//!
//! * **Instruction stream** — code is executed in sequential *segments*
//!   (several cache blocks long); segment selection follows an LRU-stack
//!   power law, modelling loops and working-set reuse.
//! * **Data stream** — individual data units selected by a second LRU-stack
//!   engine, modelling stack/heap locality.
//! * **Far stream** — an optional circular sequential walk over a large
//!   region, modelling the OS buffer and file-cache activity that gives
//!   multiprogrammed ATUM traces their multi-megabyte footprints. Without
//!   it, a power-law stack engine's footprint grows only sublinearly with
//!   trace length, and caches of several megabytes would see nothing but
//!   cold misses.

use crate::record::{AccessKind, Address, TraceRecord};

use super::rng::Xoshiro;
use super::stack::{StackDepthDistribution, StackEngine};

/// Configuration of a single synthetic process.
///
/// The defaults reproduce the reference mix the paper states for its
/// traces and calibrate the locality so a 4 KB split L1 sees a global read
/// miss ratio near 10 % (the value the paper quotes for its base machine).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessConfig {
    /// Power-law exponent for both stack engines. Steeper than
    /// `DEFAULT_THETA` (the pure-power-law reference) because the
    /// aggregate miss curve also contains compulsory misses and far-region
    /// laps; see the `Default` impl.
    pub theta: f64,
    /// Generator granularity in bytes; one "unit" is one generator block.
    /// 16 bytes = the base machine's L1 block size.
    pub unit_bytes: u64,
    /// Scale of the data-stream depth distribution, in units.
    pub data_locality_scale: f64,
    /// Scale of the instruction-segment depth distribution, in segments.
    pub inst_locality_scale: f64,
    /// Length of a sequential code segment, in units.
    pub inst_segment_units: u64,
    /// Probability that a cycle contains a data reference (paper: ~0.5).
    pub data_ref_prob: f64,
    /// Fraction of data references that are reads (paper: ~0.35).
    pub read_fraction: f64,
    /// Size of the far circular region, in units. Zero disables the far
    /// stream.
    pub far_region_units: u64,
    /// Probability that a data reference goes to the far region.
    pub far_ref_prob: f64,
    /// Upper bound on each stack engine's depth (memory bound).
    pub max_stack_depth: u64,
    /// RNG seed for this process.
    pub seed: u64,
    /// Process id: the top address bits, separating address spaces.
    pub pid: u8,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            // Steeper than the pure-power-law reference exponent
            // (DEFAULT_THETA): the *aggregate* miss curve also contains
            // compulsory misses and far-region laps, which flatten it; a
            // steeper per-component tail calibrates the aggregate
            // per-doubling factor back to the paper's measured ~0.69.
            theta: 0.85,
            unit_bytes: 16,
            // Calibrated so a 2 KB direct-mapped I-cache and 2 KB D-cache
            // (128 units each) land near the paper's ~10 % combined read
            // miss ratio for the base machine, once conflict misses and
            // multiprogramming are added on top of the stack model.
            data_locality_scale: 9.2,
            inst_locality_scale: 16.5,
            inst_segment_units: 4,
            data_ref_prob: 0.5,
            read_fraction: 0.35,
            far_region_units: 8 * 1024, // 128 KiB at 16-byte units
            far_ref_prob: 0.05,
            max_stack_depth: 1 << 20,
            seed: 0,
            pid: 0,
        }
    }
}

impl ProcessConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.theta <= 0.0 || self.theta.is_nan() {
            return Err(format!("theta must be positive, got {}", self.theta));
        }
        if !self.unit_bytes.is_power_of_two() {
            return Err(format!(
                "unit_bytes must be a power of two, got {}",
                self.unit_bytes
            ));
        }
        if !self.data_locality_scale.is_finite()
            || self.data_locality_scale <= 0.0
            || !self.inst_locality_scale.is_finite()
            || self.inst_locality_scale <= 0.0
        {
            return Err("locality scales must be positive".into());
        }
        if self.inst_segment_units == 0 {
            return Err("inst_segment_units must be positive".into());
        }
        for (name, p) in [
            ("data_ref_prob", self.data_ref_prob),
            ("read_fraction", self.read_fraction),
            ("far_ref_prob", self.far_ref_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if self.max_stack_depth == 0 {
            return Err("max_stack_depth must be positive".into());
        }
        Ok(())
    }
}

/// One CPU cycle's worth of references: an instruction fetch plus an
/// optional data reference executed in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRefs {
    /// The cycle's instruction fetch.
    pub ifetch: TraceRecord,
    /// The cycle's data reference, if any.
    pub data: Option<TraceRecord>,
}

impl CycleRefs {
    /// Number of trace records in this cycle (1 or 2).
    pub fn len(&self) -> usize {
        1 + usize::from(self.data.is_some())
    }

    /// Always `false`: every cycle contains at least the instruction fetch.
    pub fn is_empty(&self) -> bool {
        false
    }
}

// Address-space layout within a process (bits below the pid tag):
// instruction units, data units and the far region each get a disjoint
// 2^36-byte window, so streams never alias.
const I_SPACE: u64 = 0;
const D_SPACE: u64 = 1 << 36;
const FAR_SPACE: u64 = 2 << 36;
const PID_SHIFT: u32 = 40;
// Per-process placement scatter: real traces carry *physical* addresses,
// where the OS page allocator places each process's pages at effectively
// random frame numbers. Without an equivalent, every process's unit 0
// would land in cache set 0 and all streams would be index-aligned,
// manufacturing systematic cross-process conflict misses that no amount
// of capacity removes. A per-process pseudo-random base offset (within
// the low 2^26 bytes, i.e. across the index range of any cache up to
// 64 MB) restores the scatter.
const PLACEMENT_MASK: u64 = (1 << 26) - 1;

fn placement_offset(seed: u64, pid: u8, space: u64) -> u64 {
    // SplitMix64-style mixing of (seed, pid, space).
    let mut z = seed
        .wrapping_add(u64::from(pid).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(space.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & PLACEMENT_MASK & !0xFFF // page-aligned (4 KB)
}

/// A synthetic single-process reference generator.
///
/// Produces [`CycleRefs`] via [`ProcessGenerator::next_cycle`]; wrap in a
/// multiprogramming mix with
/// [`MultiProgramGenerator`](super::MultiProgramGenerator) or flatten to
/// records for single-process runs.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::{ProcessConfig, ProcessGenerator};
///
/// let mut gen = ProcessGenerator::new(ProcessConfig::default())?;
/// let cycle = gen.next_cycle();
/// assert!(cycle.ifetch.kind.is_read());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProcessGenerator {
    config: ProcessConfig,
    inst_engine: StackEngine,
    data_engine: StackEngine,
    rng: Xoshiro,
    /// Remaining unit indices (relative to segment base) in the current
    /// sequential code segment, and word cursor within the current unit.
    seg_unit: u64,
    seg_word: u64,
    seg_base_unit: u64,
    far_cursor: u64,
    base_addr: u64,
    i_offset: u64,
    d_offset: u64,
    far_offset: u64,
}

impl ProcessGenerator {
    /// Creates a generator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is invalid.
    pub fn new(config: ProcessConfig) -> Result<Self, String> {
        config.validate()?;
        let inst_dist = StackDepthDistribution::new(config.theta, config.inst_locality_scale);
        let data_dist = StackDepthDistribution::new(config.theta, config.data_locality_scale);
        let seed = config.seed;
        let mut gen = ProcessGenerator {
            inst_engine: StackEngine::new(inst_dist, config.max_stack_depth, seed ^ 0x1157),
            data_engine: StackEngine::new(data_dist, config.max_stack_depth, seed ^ 0xDA7A),
            rng: Xoshiro::seed_from_u64(seed ^ 0xC0DE),
            seg_unit: 0,
            seg_word: 0,
            seg_base_unit: 0,
            far_cursor: 0,
            base_addr: (config.pid as u64) << PID_SHIFT,
            i_offset: placement_offset(seed, config.pid, 0),
            d_offset: placement_offset(seed, config.pid, 1),
            far_offset: placement_offset(seed, config.pid, 2),
            config,
        };
        gen.begin_segment();
        Ok(gen)
    }

    /// The generator's configuration.
    pub fn config(&self) -> &ProcessConfig {
        &self.config
    }

    fn begin_segment(&mut self) {
        let (seg, _) = self.inst_engine.next_unit();
        self.seg_base_unit = seg * self.config.inst_segment_units;
        self.seg_unit = 0;
        self.seg_word = 0;
    }

    fn next_ifetch(&mut self) -> TraceRecord {
        let unit_words = self.config.unit_bytes / 4;
        let unit = self.seg_base_unit + self.seg_unit;
        let addr = self.base_addr
            | I_SPACE
            | (self.i_offset + unit * self.config.unit_bytes + self.seg_word * 4);
        self.seg_word += 1;
        if self.seg_word >= unit_words {
            self.seg_word = 0;
            self.seg_unit += 1;
            if self.seg_unit >= self.config.inst_segment_units {
                self.begin_segment();
            }
        }
        TraceRecord::new(AccessKind::InstructionFetch, Address::new(addr))
    }

    fn next_data(&mut self) -> TraceRecord {
        let kind = if self.rng.next_bool(self.config.read_fraction) {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        let far = self.config.far_region_units > 0 && self.rng.next_bool(self.config.far_ref_prob);
        let addr = if far {
            let unit = self.far_cursor;
            self.far_cursor = (self.far_cursor + 1) % self.config.far_region_units;
            self.base_addr | FAR_SPACE | (self.far_offset + unit * self.config.unit_bytes)
        } else {
            let (unit, _) = self.data_engine.next_unit();
            let word = self.rng.next_below(self.config.unit_bytes / 4);
            self.base_addr | D_SPACE | (self.d_offset + unit * self.config.unit_bytes + word * 4)
        };
        TraceRecord::new(kind, Address::new(addr))
    }

    /// Generates the next CPU cycle.
    pub fn next_cycle(&mut self) -> CycleRefs {
        let ifetch = self.next_ifetch();
        let data = if self.rng.next_bool(self.config.data_ref_prob) {
            Some(self.next_data())
        } else {
            None
        };
        CycleRefs { ifetch, data }
    }

    /// Flattens the generator into an infinite record stream.
    pub fn into_records(self) -> ProcessRecords {
        ProcessRecords {
            gen: self,
            pending: None,
        }
    }
}

/// Infinite record iterator over a [`ProcessGenerator`], created by
/// [`ProcessGenerator::into_records`].
#[derive(Debug, Clone)]
pub struct ProcessRecords {
    gen: ProcessGenerator,
    pending: Option<TraceRecord>,
}

impl Iterator for ProcessRecords {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if let Some(r) = self.pending.take() {
            return Some(r);
        }
        let cycle = self.gen.next_cycle();
        self.pending = cycle.data;
        Some(cycle.ifetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn default_config_is_valid() {
        assert!(ProcessConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let cases = [
            ProcessConfig {
                theta: -1.0,
                ..ProcessConfig::default()
            },
            ProcessConfig {
                unit_bytes: 24,
                ..ProcessConfig::default()
            },
            ProcessConfig {
                data_ref_prob: 1.5,
                ..ProcessConfig::default()
            },
            ProcessConfig {
                inst_segment_units: 0,
                ..ProcessConfig::default()
            },
            ProcessConfig {
                max_stack_depth: 0,
                ..ProcessConfig::default()
            },
        ];
        for c in cases {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn reference_mix_matches_config() {
        let config = ProcessConfig {
            seed: 3,
            ..ProcessConfig::default()
        };
        let gen = ProcessGenerator::new(config).unwrap();
        let records: Vec<_> = gen.into_records().take(200_000).collect();
        let stats = TraceStats::from_records(records.iter().copied(), 16).unwrap();
        let dpf = stats.data_per_ifetch().unwrap();
        assert!((dpf - 0.5).abs() < 0.02, "data per ifetch {dpf}");
        let rf = stats.read_fraction_of_data().unwrap();
        assert!((rf - 0.35).abs() < 0.02, "read fraction {rf}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            ProcessGenerator::new(ProcessConfig {
                seed: 77,
                ..ProcessConfig::default()
            })
            .unwrap()
            .into_records()
            .take(5000)
            .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_pids_use_disjoint_address_spaces() {
        for pid in [0u8, 1, 5] {
            let gen = ProcessGenerator::new(ProcessConfig {
                pid,
                seed: 9,
                ..ProcessConfig::default()
            })
            .unwrap();
            for r in gen.into_records().take(10_000) {
                assert_eq!(r.addr.get() >> PID_SHIFT, pid as u64);
            }
        }
    }

    #[test]
    fn instruction_stream_is_locally_sequential() {
        let gen = ProcessGenerator::new(ProcessConfig {
            seed: 5,
            data_ref_prob: 0.0,
            ..ProcessConfig::default()
        })
        .unwrap();
        let records: Vec<_> = gen.into_records().take(10_000).collect();
        let sequential = records
            .windows(2)
            .filter(|w| w[1].addr.get() == w[0].addr.get() + 4)
            .count();
        // Segments are 4 units × 4 words, so ≥ 14/16 of steps are sequential.
        assert!(
            sequential as f64 / (records.len() - 1) as f64 > 0.8,
            "sequential fraction too low: {sequential}"
        );
    }

    #[test]
    fn far_stream_walks_circularly() {
        let config = ProcessConfig {
            seed: 6,
            far_region_units: 8,
            far_ref_prob: 1.0,
            data_ref_prob: 1.0,
            ..ProcessConfig::default()
        };
        let gen = ProcessGenerator::new(config).unwrap();
        let far_addrs: Vec<u64> = gen
            .into_records()
            .filter(|r| r.kind.is_data())
            .take(16)
            .map(|r| (r.addr.get() >> 4) & 0xff)
            .collect();
        assert_eq!(
            far_addrs,
            (0..8).chain(0..8).collect::<Vec<u64>>(),
            "far walk should wrap around an 8-unit region"
        );
    }

    #[test]
    fn disabling_far_stream_keeps_all_data_in_d_space() {
        let config = ProcessConfig {
            seed: 8,
            far_region_units: 0,
            ..ProcessConfig::default()
        };
        let gen = ProcessGenerator::new(config).unwrap();
        for r in gen.into_records().take(20_000) {
            if r.kind.is_data() {
                assert_eq!(r.addr.get() & FAR_SPACE, 0, "far space must be unused");
            }
        }
    }

    #[test]
    fn streams_never_alias() {
        let gen = ProcessGenerator::new(ProcessConfig {
            seed: 10,
            ..ProcessConfig::default()
        })
        .unwrap();
        for r in gen.into_records().take(50_000) {
            let space = (r.addr.get() >> 36) & 0xf;
            match r.kind {
                AccessKind::InstructionFetch => assert_eq!(space, 0),
                _ => assert!(space == 1 || space == 2, "data in space {space}"),
            }
        }
    }
}
