//! The LRU-stack-distance reference engine.
//!
//! The paper's traces matter to its results only through the shape of the
//! miss-ratio-versus-size curve: the authors measure that each doubling of
//! cache size multiplies the solo miss ratio by ~0.69 (§4), i.e. the miss
//! ratio is roughly proportional to 1/√size. A reference stream whose LRU
//! stack distances follow a heavy-tailed (Pareto-II) distribution
//! reproduces that law *by construction*: the miss ratio of a fully
//! associative LRU cache of capacity `C` blocks equals the probability
//! that a reference's stack distance is at least `C`, which for the
//! distribution below is `((C + d0) / d0)^-θ` — multiplying by `2^-θ ≈
//! 0.69` per doubling when `θ = log2(1/0.69) ≈ 0.536`.

use super::ranked::RankedList;
use super::rng::Xoshiro;

/// The default power-law exponent, chosen so each cache-size doubling
/// multiplies the miss ratio by the paper's measured factor of 0.69
/// (`θ = log2(1/0.69)`).
pub const DEFAULT_THETA: f64 = 0.536;

/// A Pareto-II (Lomax) distribution over LRU stack depths.
///
/// `P(depth ≥ d) = ((d + scale) / scale)^-θ`, support `{0, 1, 2, …}`.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::StackDepthDistribution;
///
/// // Calibrated so a 128-block cache sees a 10% miss ratio.
/// let dist = StackDepthDistribution::calibrated(0.536, 0.10, 128);
/// assert!((dist.survival(128) - 0.10).abs() < 1e-9);
/// // Per-doubling factor is 2^-θ in the tail:
/// let factor = dist.survival(4096) / dist.survival(2048);
/// assert!((factor - 0.69f64).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackDepthDistribution {
    theta: f64,
    scale: f64,
}

impl StackDepthDistribution {
    /// Creates a distribution with the given exponent and scale.
    ///
    /// # Panics
    ///
    /// Panics unless `theta > 0` and `scale > 0`.
    pub fn new(theta: f64, scale: f64) -> Self {
        assert!(theta > 0.0, "theta must be positive, got {theta}");
        assert!(scale > 0.0, "scale must be positive, got {scale}");
        StackDepthDistribution { theta, scale }
    }

    /// Creates a distribution with exponent `theta` whose survival function
    /// equals `target_miss` at depth `at_depth` — i.e. a fully associative
    /// LRU cache of `at_depth` blocks would see miss ratio `target_miss`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_miss < 1`, `theta > 0` and `at_depth > 0`.
    pub fn calibrated(theta: f64, target_miss: f64, at_depth: u64) -> Self {
        assert!(
            target_miss > 0.0 && target_miss < 1.0,
            "target_miss must be in (0,1), got {target_miss}"
        );
        assert!(at_depth > 0, "at_depth must be positive");
        let ratio = target_miss.powf(-1.0 / theta); // (d + s)/s at d = at_depth
        let scale = at_depth as f64 / (ratio - 1.0);
        StackDepthDistribution::new(theta, scale)
    }

    /// The power-law exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The scale parameter (the paper-free `d0` in the module docs).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// `P(depth ≥ d)` — equivalently, the model's miss ratio for a fully
    /// associative LRU cache of `d` blocks.
    pub fn survival(&self, d: u64) -> f64 {
        ((d as f64 + self.scale) / self.scale).powf(-self.theta)
    }

    /// The factor by which the survival function shrinks per doubling of
    /// depth, deep in the tail (`2^-θ`).
    pub fn doubling_factor(&self) -> f64 {
        2f64.powf(-self.theta)
    }

    /// Samples a stack depth by inverse transform.
    pub fn sample(&self, rng: &mut Xoshiro) -> u64 {
        let u = rng.next_f64_open_zero();
        let depth = self.scale * (u.powf(-1.0 / self.theta) - 1.0);
        if depth >= u64::MAX as f64 {
            u64::MAX
        } else {
            depth as u64
        }
    }
}

/// What a [`StackEngine`] reference resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackOutcome {
    /// The reference re-used the block at the given pre-access stack depth.
    Reuse {
        /// Stack depth of the block before this access.
        depth: u64,
    },
    /// The reference touched a never-before-seen block.
    Fresh,
}

/// An LRU-stack reference engine over abstract block numbers.
///
/// Each call to [`StackEngine::next_unit`] samples a stack depth from the
/// configured distribution, references the block currently at that depth
/// (moving it to the front), and returns its block number. Depths beyond
/// the current stack — or beyond `max_depth` — allocate a fresh,
/// sequentially-numbered block, modelling compulsory misses.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::{StackDepthDistribution, StackEngine};
///
/// let dist = StackDepthDistribution::new(0.536, 2.0);
/// let mut engine = StackEngine::new(dist, 1 << 20, 42);
/// let (first, _) = engine.next_unit();
/// assert_eq!(first, 0); // the very first reference is always fresh
/// ```
#[derive(Debug, Clone)]
pub struct StackEngine {
    stack: RankedList<u64>,
    dist: StackDepthDistribution,
    next_block: u64,
    max_depth: u64,
    rng: Xoshiro,
    fresh_count: u64,
    reuse_count: u64,
}

impl StackEngine {
    /// Creates an engine with the given depth distribution, maximum stack
    /// depth (bounding memory use) and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn new(dist: StackDepthDistribution, max_depth: u64, seed: u64) -> Self {
        assert!(max_depth > 0, "max_depth must be positive");
        StackEngine {
            stack: RankedList::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            dist,
            next_block: 0,
            max_depth,
            rng: Xoshiro::seed_from_u64(seed),
            fresh_count: 0,
            reuse_count: 0,
        }
    }

    /// Produces the next referenced block number and whether it was a
    /// fresh block or a reuse.
    pub fn next_unit(&mut self) -> (u64, StackOutcome) {
        let depth = self.dist.sample(&mut self.rng);
        if depth < self.stack.len() as u64 && depth < self.max_depth {
            let block = *self
                .stack
                .move_to_front(depth as usize)
                .expect("depth < len implies in bounds");
            self.reuse_count += 1;
            (block, StackOutcome::Reuse { depth })
        } else {
            let block = self.alloc_fresh();
            (block, StackOutcome::Fresh)
        }
    }

    /// References a specific fresh block (used by callers that weave in
    /// their own sequential patterns); pushes it onto the stack front.
    fn alloc_fresh(&mut self) -> u64 {
        let block = self.next_block;
        self.next_block += 1;
        self.stack.push_front(block);
        self.fresh_count += 1;
        // Keep the stack bounded: blocks pushed beyond max_depth can never
        // be re-referenced (sampling clamps at max_depth), so drop them.
        if self.stack.len() as u64 > self.max_depth {
            self.stack.pop_back();
        }
        block
    }

    /// Number of distinct blocks allocated so far.
    pub fn unique_blocks(&self) -> u64 {
        self.next_block
    }

    /// Current stack depth.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// Fraction of references so far that touched fresh blocks.
    pub fn fresh_fraction(&self) -> f64 {
        let total = self.fresh_count + self.reuse_count;
        if total == 0 {
            0.0
        } else {
            self.fresh_count as f64 / total as f64
        }
    }

    /// The engine's depth distribution.
    pub fn distribution(&self) -> StackDepthDistribution {
        self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_target() {
        for (miss, depth) in [(0.1, 128), (0.02, 4096), (0.5, 16)] {
            let d = StackDepthDistribution::calibrated(DEFAULT_THETA, miss, depth);
            assert!((d.survival(depth) - miss).abs() < 1e-9);
        }
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        let mut prev = d.survival(0);
        assert!((prev - 1.0).abs() < 1e-12);
        for depth in [1, 2, 4, 8, 1024, 1 << 20] {
            let s = d.survival(depth);
            assert!(s < prev);
            prev = s;
        }
    }

    #[test]
    fn doubling_factor_matches_paper() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        assert!((d.doubling_factor() - 0.69).abs() < 0.005);
    }

    #[test]
    fn sampled_depths_match_survival() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 4.0);
        let mut rng = Xoshiro::seed_from_u64(11);
        let n = 200_000;
        let mut ge_64 = 0u64;
        let mut ge_1024 = 0u64;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            if s >= 64 {
                ge_64 += 1;
            }
            if s >= 1024 {
                ge_1024 += 1;
            }
        }
        let emp_64 = ge_64 as f64 / n as f64;
        let emp_1024 = ge_1024 as f64 / n as f64;
        assert!((emp_64 - d.survival(64)).abs() < 0.01, "{emp_64}");
        assert!((emp_1024 - d.survival(1024)).abs() < 0.005, "{emp_1024}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_theta() {
        StackDepthDistribution::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "target_miss")]
    fn rejects_bad_target() {
        StackDepthDistribution::calibrated(0.5, 1.5, 128);
    }

    #[test]
    fn first_reference_is_fresh() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        let mut e = StackEngine::new(d, 1 << 16, 1);
        let (block, outcome) = e.next_unit();
        assert_eq!(block, 0);
        assert_eq!(outcome, StackOutcome::Fresh);
        assert_eq!(e.unique_blocks(), 1);
    }

    #[test]
    fn engine_is_deterministic() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        let mut a = StackEngine::new(d, 1 << 16, 9);
        let mut b = StackEngine::new(d, 1 << 16, 9);
        for _ in 0..10_000 {
            assert_eq!(a.next_unit(), b.next_unit());
        }
    }

    #[test]
    fn reuse_depths_reflect_distribution() {
        // Empirical miss ratio of a simulated fully-associative LRU cache of
        // C blocks should track survival(C).
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        let mut e = StackEngine::new(d, 1 << 20, 5);
        let c = 256u64;
        let n = 100_000;
        let mut misses = 0u64;
        for _ in 0..n {
            let (_, outcome) = e.next_unit();
            match outcome {
                StackOutcome::Fresh => misses += 1,
                StackOutcome::Reuse { depth } if depth >= c => misses += 1,
                StackOutcome::Reuse { .. } => {}
            }
        }
        let emp = misses as f64 / n as f64;
        let expect = d.survival(c);
        // Finite-trace cold-start inflates the empirical ratio slightly.
        assert!(
            emp >= expect * 0.8 && emp <= expect * 2.5,
            "empirical {emp} vs model {expect}"
        );
    }

    #[test]
    fn stack_bounded_by_max_depth() {
        let d = StackDepthDistribution::new(0.2, 50.0); // heavy tail: grows fast
        let mut e = StackEngine::new(d, 512, 3);
        for _ in 0..20_000 {
            e.next_unit();
        }
        assert!(e.stack_len() <= 512);
    }

    #[test]
    fn unique_blocks_grow_sublinearly() {
        let d = StackDepthDistribution::new(DEFAULT_THETA, 2.0);
        let mut e = StackEngine::new(d, 1 << 20, 7);
        for _ in 0..50_000 {
            e.next_unit();
        }
        let at_50k = e.unique_blocks();
        for _ in 0..50_000 {
            e.next_unit();
        }
        let at_100k = e.unique_blocks();
        // Doubling references should much less than double unique blocks'
        // growth rate tail; allow generous slack.
        assert!(at_100k < at_50k * 2);
        assert!(e.fresh_fraction() < 0.2);
    }
}
