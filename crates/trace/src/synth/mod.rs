//! Synthetic workload generation.
//!
//! The paper evaluates its hierarchies on eight large multiprogramming
//! traces: four ATUM traces captured on a VAX 8200 (three VMS, one Ultrix,
//! all containing operating-system references) and four interleaved MIPS
//! R2000 user traces. Those tapes are not available, so this module
//! synthesises workloads with the same *load-bearing* properties (see
//! DESIGN.md §4):
//!
//! 1. miss ratio shrinking by ×~0.69 per cache-size doubling (power-law
//!    LRU stack distances),
//! 2. the paper's reference mix (~50 % of cycles carry a data reference,
//!    ~35 % of data references are reads),
//! 3. multiprogramming context switches at VAX-like intervals, and
//! 4. multi-megabyte aggregate footprints (OS-like far-region activity).
//!
//! [`workload`] provides eight named presets standing in for the paper's
//! eight traces.

mod multi;
mod process;
mod ranked;
mod rng;
mod stack;

pub use multi::{MultiProgramConfig, MultiProgramGenerator, MultiProgramRecords};
pub use process::{CycleRefs, ProcessConfig, ProcessGenerator, ProcessRecords};
pub use ranked::{Iter as RankedListIter, RankedList};
pub use rng::Xoshiro;
pub use stack::{StackDepthDistribution, StackEngine, StackOutcome, DEFAULT_THETA};

/// Named workload presets standing in for the paper's eight traces.
pub mod workload {
    use super::{MultiProgramConfig, ProcessConfig};

    /// A named multiprogramming workload preset.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Preset {
        /// VMS-like ATUM trace #1: OS-heavy, large footprint.
        Vms1,
        /// VMS-like ATUM trace #2.
        Vms2,
        /// VMS-like ATUM trace #3.
        Vms3,
        /// Ultrix-like ATUM trace: slightly smaller OS footprint.
        Ultrix,
        /// Interleaved R2000 user trace #1: no OS references, tighter
        /// locality, longer switch intervals.
        Mips1,
        /// Interleaved R2000 user trace #2.
        Mips2,
        /// Interleaved R2000 user trace #3.
        Mips3,
        /// Interleaved R2000 user trace #4.
        Mips4,
    }

    impl Preset {
        /// All eight presets, mirroring the paper's eight traces.
        pub const ALL: [Preset; 8] = [
            Preset::Vms1,
            Preset::Vms2,
            Preset::Vms3,
            Preset::Ultrix,
            Preset::Mips1,
            Preset::Mips2,
            Preset::Mips3,
            Preset::Mips4,
        ];

        /// The preset's display name.
        pub fn name(self) -> &'static str {
            match self {
                Preset::Vms1 => "vms1",
                Preset::Vms2 => "vms2",
                Preset::Vms3 => "vms3",
                Preset::Ultrix => "ultrix",
                Preset::Mips1 => "mips1",
                Preset::Mips2 => "mips2",
                Preset::Mips3 => "mips3",
                Preset::Mips4 => "mips4",
            }
        }

        /// Looks a preset up by its display name.
        ///
        /// # Examples
        ///
        /// ```
        /// use mlc_trace::synth::workload::Preset;
        ///
        /// assert_eq!(Preset::from_name("vms1"), Some(Preset::Vms1));
        /// assert_eq!(Preset::from_name("nope"), None);
        /// ```
        pub fn from_name(name: &str) -> Option<Preset> {
            Preset::ALL.iter().copied().find(|p| p.name() == name)
        }

        /// Builds the preset's multiprogramming configuration.
        ///
        /// `seed` decorrelates reruns; the per-preset parameter variations
        /// (process count, switch interval, footprint, locality) are fixed
        /// so the eight presets behave like eight distinct programs.
        pub fn config(self, seed: u64) -> MultiProgramConfig {
            let base = ProcessConfig::default();
            let seed = seed ^ ((self as u64) << 32);
            match self {
                // ATUM-like: OS references → larger far regions, more
                // processes, VAX-like switch intervals. Base far sizes are
                // staggered ×1/2/4 per process by `tuned`, so e.g. vms1
                // spans 16K–64K units (256 KB–1 MB) per process.
                Preset::Vms1 => tuned(6, 8_000.0, 16 * 1024, 0.055, 9.2, base, seed),
                Preset::Vms2 => tuned(6, 10_000.0, 12 * 1024, 0.048, 8.5, base, seed),
                Preset::Vms3 => tuned(8, 7_000.0, 14 * 1024, 0.052, 9.8, base, seed),
                Preset::Ultrix => tuned(5, 12_000.0, 10 * 1024, 0.040, 9.2, base, seed),
                // R2000-like: user-only → tighter locality, smaller far
                // regions, switch intervals matched to the VAX traces.
                Preset::Mips1 => tuned(4, 9_000.0, 8 * 1024, 0.032, 8.0, base, seed),
                Preset::Mips2 => tuned(4, 11_000.0, 6 * 1024, 0.028, 7.4, base, seed),
                Preset::Mips3 => tuned(4, 8_500.0, 10 * 1024, 0.036, 8.7, base, seed),
                Preset::Mips4 => tuned(4, 10_500.0, 7 * 1024, 0.032, 8.0, base, seed),
            }
        }
    }

    fn tuned(
        n: usize,
        switch: f64,
        far_units: u64,
        far_prob: f64,
        data_scale: f64,
        base: ProcessConfig,
        seed: u64,
    ) -> MultiProgramConfig {
        let base = ProcessConfig {
            far_region_units: far_units,
            far_ref_prob: far_prob,
            data_locality_scale: data_scale,
            ..base
        };
        let mut config = MultiProgramConfig::homogeneous(n, base, seed);
        config.mean_switch_interval = switch;
        // Stagger the processes' far-region sizes (×1, ×2, ×4) so the
        // aggregate reuse working set spans a wide range of cache sizes —
        // larger caches progressively capture more processes' regions,
        // keeping the miss-ratio-versus-size curve falling instead of
        // hitting one sharp knee.
        for (i, p) in config.processes.iter_mut().enumerate() {
            p.far_region_units = far_units << (i % 3);
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::workload::Preset;
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn all_presets_build_and_validate() {
        for p in Preset::ALL {
            let config = p.config(1);
            assert!(config.validate().is_ok(), "{} invalid", p.name());
            let mut gen = MultiProgramGenerator::new(config).unwrap();
            let recs = gen.generate_records(1000);
            assert_eq!(recs.len(), 1000);
        }
    }

    #[test]
    fn preset_names_are_distinct() {
        let mut names: Vec<_> = Preset::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn presets_differ_from_each_other() {
        let recs = |p: Preset| {
            MultiProgramGenerator::new(p.config(1))
                .unwrap()
                .generate_records(1000)
        };
        assert_ne!(recs(Preset::Vms1), recs(Preset::Vms2));
        assert_ne!(recs(Preset::Mips1), recs(Preset::Mips4));
    }

    #[test]
    fn preset_mix_matches_paper() {
        let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(3)).unwrap();
        let recs = gen.generate_records(150_000);
        let stats = TraceStats::from_records(recs.iter().copied(), 16).unwrap();
        let dpf = stats.data_per_ifetch().unwrap();
        assert!((dpf - 0.5).abs() < 0.03, "data/ifetch {dpf}");
        let rf = stats.read_fraction_of_data().unwrap();
        assert!((rf - 0.35).abs() < 0.03, "read fraction {rf}");
    }

    #[test]
    fn vms_presets_have_larger_footprints_than_mips() {
        let footprint = |p: Preset| {
            let mut gen = MultiProgramGenerator::new(p.config(5)).unwrap();
            let recs = gen.generate_records(200_000);
            TraceStats::from_records(recs.iter().copied(), 16)
                .unwrap()
                .footprint_bytes()
        };
        assert!(footprint(Preset::Vms1) > footprint(Preset::Mips2));
    }
}
