//! A small, deterministic pseudo-random number generator for trace
//! synthesis.
//!
//! Trace generation must be bit-reproducible across library versions and
//! platforms — a regenerated trace that differs by one reference changes
//! every downstream cycle count. We therefore implement the well-known
//! xoshiro256++ generator (Blackman & Vigna) with SplitMix64 seeding
//! in-tree rather than depending on an external crate whose stream might
//! change between releases.

/// Deterministic xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; intended solely for workload synthesis.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::Xoshiro;
///
/// let mut a = Xoshiro::seed_from_u64(7);
/// let mut b = Xoshiro::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro {
    s: [u64; 4],
}

impl Xoshiro {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]` — convenient as input to inverse
    /// transforms like `u.powf(-1.0 / theta)` that must not see zero.
    #[inline]
    pub fn next_f64_open_zero(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: recompute threshold only on the slow path.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a geometric random variable with the given mean — the number
    /// of trials until the first success, support `{1, 2, ...}`.
    ///
    /// Used for sequential-run lengths and context-switch intervals.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1`.
    #[inline]
    pub fn next_geometric(&mut self, mean: f64) -> u64 {
        assert!(mean >= 1.0, "geometric mean must be >= 1, got {mean}");
        if mean == 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.next_f64_open_zero();
        // Inverse CDF of the geometric distribution on {1, 2, ...}.
        let v = (u.ln() / (1.0 - p).ln()).ceil();
        if v < 1.0 {
            1
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Xoshiro::seed_from_u64(42);
        let mut b = Xoshiro::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro::seed_from_u64(1);
        let mut b = Xoshiro::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open_zero();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = Xoshiro::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_values_in_range_and_cover() {
        let mut r = Xoshiro::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bounded_one_is_always_zero() {
        let mut r = Xoshiro::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(r.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bounded_zero_panics() {
        Xoshiro::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = Xoshiro::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.next_bool(0.35)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn geometric_mean_roughly_respected() {
        let mut r = Xoshiro::seed_from_u64(8);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.next_geometric(8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = Xoshiro::seed_from_u64(9);
        assert!((0..10_000).all(|_| r.next_geometric(2.0) >= 1));
        assert!((0..100).all(|_| r.next_geometric(1.0) == 1));
    }
}
