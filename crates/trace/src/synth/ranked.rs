//! An order-statistics list: a sequence supporting O(log n) access, removal
//! and re-insertion **by rank**.
//!
//! The LRU-stack reference model needs to repeatedly "reference the block
//! currently at stack depth *d*", which moves that block to the front. A
//! `Vec` makes that O(n) per reference; traces are tens of millions of
//! references deep, so we use an implicit treap (randomised balanced BST
//! keyed by position, augmented with subtree sizes) giving O(log n)
//! expected time per operation.

use super::rng::Xoshiro;

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    priority: u64,
    size: usize,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

impl<T> Node<T> {
    fn new(value: T, priority: u64) -> Box<Self> {
        Box::new(Node {
            value,
            priority,
            size: 1,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.size = 1 + size(&self.left) + size(&self.right);
    }
}

#[inline]
fn size<T>(n: &Option<Box<Node<T>>>) -> usize {
    n.as_ref().map_or(0, |n| n.size)
}

fn merge<T>(a: Option<Box<Node<T>>>, b: Option<Box<Node<T>>>) -> Option<Box<Node<T>>> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(mut b)) => {
            if a.priority >= b.priority {
                a.right = merge(a.right.take(), Some(b));
                a.update();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                b.update();
                Some(b)
            }
        }
    }
}

type Subtree<T> = Option<Box<Node<T>>>;

/// Splits `t` into (first `k` elements, the rest).
fn split<T>(t: Subtree<T>, k: usize) -> (Subtree<T>, Subtree<T>) {
    match t {
        None => (None, None),
        Some(mut n) => {
            let left_size = size(&n.left);
            if k <= left_size {
                let (a, b) = split(n.left.take(), k);
                n.left = b;
                n.update();
                (a, Some(n))
            } else {
                let (a, b) = split(n.right.take(), k - left_size - 1);
                n.right = a;
                n.update();
                (Some(n), b)
            }
        }
    }
}

/// A sequence with O(log n) rank-addressed operations, used as an LRU stack.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::RankedList;
///
/// let mut list = RankedList::new(1);
/// list.push_front("c");
/// list.push_front("b");
/// list.push_front("a");            // list is [a, b, c]
/// assert_eq!(list.move_to_front(2), Some(&"c")); // now [c, a, b]
/// assert_eq!(list.get(0), Some(&"c"));
/// assert_eq!(list.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RankedList<T> {
    root: Option<Box<Node<T>>>,
    rng: Xoshiro,
}

impl<T> RankedList<T> {
    /// Creates an empty list. `seed` determines the internal treap
    /// priorities, making the structure (not just its contents) fully
    /// deterministic.
    pub fn new(seed: u64) -> Self {
        RankedList {
            root: None,
            rng: Xoshiro::seed_from_u64(seed ^ 0x5EED_0F7E_A901),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts `value` at the front (rank 0).
    pub fn push_front(&mut self, value: T) {
        let node = Node::new(value, self.rng.next_u64());
        self.root = merge(Some(node), self.root.take());
    }

    /// Moves the element at `rank` to the front and returns a reference to
    /// it, or `None` if `rank` is out of bounds.
    pub fn move_to_front(&mut self, rank: usize) -> Option<&T> {
        if rank >= self.len() {
            return None;
        }
        if rank == 0 {
            return self.get(0);
        }
        let (a, bc) = split(self.root.take(), rank);
        let (b, c) = split(bc, 1);
        self.root = merge(b, merge(a, c));
        self.get(0)
    }

    /// Removes and returns the element at `rank`, or `None` if out of
    /// bounds.
    pub fn remove(&mut self, rank: usize) -> Option<T> {
        if rank >= self.len() {
            return None;
        }
        let (a, bc) = split(self.root.take(), rank);
        let (b, c) = split(bc, 1);
        self.root = merge(a, c);
        b.map(|n| n.value)
    }

    /// Removes and returns the last element, or `None` if empty.
    pub fn pop_back(&mut self) -> Option<T> {
        let n = self.len();
        if n == 0 {
            None
        } else {
            self.remove(n - 1)
        }
    }

    /// Returns a reference to the element at `rank` without reordering.
    pub fn get(&self, rank: usize) -> Option<&T> {
        let mut node = self.root.as_deref()?;
        let mut rank = rank;
        loop {
            let ls = size(&node.left);
            if rank < ls {
                node = node.left.as_deref()?;
            } else if rank == ls {
                return Some(&node.value);
            } else {
                rank -= ls + 1;
                node = node.right.as_deref()?;
            }
        }
    }

    /// Iterates front-to-back. O(n); intended for tests and debugging.
    pub fn iter(&self) -> Iter<'_, T> {
        let mut stack = Vec::new();
        push_left(&self.root, &mut stack);
        Iter { stack }
    }
}

fn push_left<'a, T>(mut node: &'a Option<Box<Node<T>>>, stack: &mut Vec<&'a Node<T>>) {
    while let Some(n) = node.as_deref() {
        stack.push(n);
        node = &n.left;
    }
}

/// Front-to-back iterator over a [`RankedList`], created by
/// [`RankedList::iter`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    stack: Vec<&'a Node<T>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.stack.pop()?;
        push_left(&node.right, &mut self.stack);
        Some(&node.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect<T: Clone>(l: &RankedList<T>) -> Vec<T> {
        l.iter().cloned().collect()
    }

    #[test]
    fn push_front_orders() {
        let mut l = RankedList::new(1);
        for v in [3, 2, 1] {
            l.push_front(v);
        }
        assert_eq!(collect(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
    }

    #[test]
    fn get_by_rank() {
        let mut l = RankedList::new(2);
        for v in (0..10).rev() {
            l.push_front(v);
        }
        for i in 0..10 {
            assert_eq!(l.get(i), Some(&(i as i32)));
        }
        assert_eq!(l.get(10), None);
    }

    #[test]
    fn move_to_front_semantics() {
        let mut l = RankedList::new(3);
        for v in [4, 3, 2, 1, 0].iter() {
            l.push_front(*v);
        }
        // [0,1,2,3,4]
        assert_eq!(l.move_to_front(3), Some(&3));
        assert_eq!(collect(&l), vec![3, 0, 1, 2, 4]);
        assert_eq!(l.move_to_front(0), Some(&3));
        assert_eq!(collect(&l), vec![3, 0, 1, 2, 4]);
        assert_eq!(l.move_to_front(5), None);
    }

    #[test]
    fn remove_semantics() {
        let mut l = RankedList::new(4);
        for v in [2, 1, 0] {
            l.push_front(v);
        }
        assert_eq!(l.remove(1), Some(1));
        assert_eq!(collect(&l), vec![0, 2]);
        assert_eq!(l.remove(5), None);
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn matches_vec_reference_model() {
        // Differential test against a straightforward Vec implementation.
        let mut rng = Xoshiro::seed_from_u64(99);
        let mut treap = RankedList::new(5);
        let mut model: Vec<u64> = Vec::new();
        for step in 0..5000u64 {
            match rng.next_below(4) {
                0 => {
                    treap.push_front(step);
                    model.insert(0, step);
                }
                1 if !model.is_empty() => {
                    let r = rng.next_below(model.len() as u64) as usize;
                    let v = model.remove(r);
                    model.insert(0, v);
                    assert_eq!(treap.move_to_front(r), Some(&v));
                }
                2 if !model.is_empty() => {
                    let r = rng.next_below(model.len() as u64) as usize;
                    assert_eq!(treap.remove(r), Some(model.remove(r)));
                }
                _ => {
                    if !model.is_empty() {
                        let r = rng.next_below(model.len() as u64) as usize;
                        assert_eq!(treap.get(r), Some(&model[r]));
                    }
                }
            }
            assert_eq!(treap.len(), model.len());
        }
        assert_eq!(collect(&treap), model);
    }

    #[test]
    fn large_list_stays_usable() {
        let mut l = RankedList::new(6);
        for v in 0..100_000u64 {
            l.push_front(v);
        }
        assert_eq!(l.len(), 100_000);
        assert_eq!(l.get(0), Some(&99_999));
        assert_eq!(l.get(99_999), Some(&0));
        l.move_to_front(99_999);
        assert_eq!(l.get(0), Some(&0));
    }
}
