//! Multiprogramming: interleaving several process generators with context
//! switches.
//!
//! The paper's MIPS R2000 traces were produced by randomly interleaving
//! uniprocessor traces "to match the context switch intervals seen in the
//! VAX traces" (§2). This module reproduces that construction: a set of
//! processes executes round-robin-with-random-selection, each quantum
//! lasting a geometrically distributed number of CPU cycles.

use crate::record::TraceRecord;

use super::process::{CycleRefs, ProcessConfig, ProcessGenerator};
use super::rng::Xoshiro;

/// Configuration of a multiprogramming workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiProgramConfig {
    /// Per-process configurations. Each process should have a distinct
    /// `pid`; [`MultiProgramConfig::homogeneous`] arranges that.
    pub processes: Vec<ProcessConfig>,
    /// Mean context-switch interval in CPU cycles (geometrically
    /// distributed). The ATUM VAX traces switch every several thousand
    /// references.
    pub mean_switch_interval: f64,
    /// Seed for scheduler randomness (process selection and quantum
    /// lengths).
    pub seed: u64,
}

impl MultiProgramConfig {
    /// Builds a workload of `n` processes sharing a base configuration,
    /// with distinct pids and decorrelated seeds.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlc_trace::synth::{MultiProgramConfig, ProcessConfig};
    ///
    /// let config = MultiProgramConfig::homogeneous(4, ProcessConfig::default(), 42);
    /// assert_eq!(config.processes.len(), 4);
    /// assert_ne!(config.processes[0].pid, config.processes[3].pid);
    /// ```
    pub fn homogeneous(n: usize, base: ProcessConfig, seed: u64) -> Self {
        let processes = (0..n)
            .map(|i| ProcessConfig {
                pid: i as u8,
                seed: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64),
                ..base.clone()
            })
            .collect();
        MultiProgramConfig {
            processes,
            mean_switch_interval: 10_000.0,
            seed,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field, including any
    /// invalid per-process configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.processes.is_empty() {
            return Err("at least one process is required".into());
        }
        if !(self.mean_switch_interval.is_finite() && self.mean_switch_interval >= 1.0) {
            return Err(format!(
                "mean_switch_interval must be >= 1, got {}",
                self.mean_switch_interval
            ));
        }
        for (i, p) in self.processes.iter().enumerate() {
            p.validate().map_err(|e| format!("process {i}: {e}"))?;
        }
        Ok(())
    }
}

/// An interleaved multiprogramming reference generator.
///
/// # Examples
///
/// ```
/// use mlc_trace::synth::{MultiProgramConfig, MultiProgramGenerator, ProcessConfig};
///
/// let config = MultiProgramConfig::homogeneous(2, ProcessConfig::default(), 1);
/// let mut gen = MultiProgramGenerator::new(config)?;
/// let records = gen.generate_records(1000);
/// assert_eq!(records.len(), 1000);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiProgramGenerator {
    processes: Vec<ProcessGenerator>,
    rng: Xoshiro,
    mean_switch_interval: f64,
    current: usize,
    quantum_left: u64,
    switches: u64,
}

impl MultiProgramGenerator {
    /// Creates a generator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is invalid.
    pub fn new(config: MultiProgramConfig) -> Result<Self, String> {
        config.validate()?;
        let processes = config
            .processes
            .into_iter()
            .map(ProcessGenerator::new)
            .collect::<Result<Vec<_>, _>>()?;
        let mut rng = Xoshiro::seed_from_u64(config.seed ^ 0x5C8E_D01E);
        let current = rng.next_below(processes.len() as u64) as usize;
        let quantum_left = rng.next_geometric(config.mean_switch_interval);
        Ok(MultiProgramGenerator {
            processes,
            rng,
            mean_switch_interval: config.mean_switch_interval,
            current,
            quantum_left,
            switches: 0,
        })
    }

    /// Generates the next CPU cycle, switching process when the current
    /// quantum expires.
    pub fn next_cycle(&mut self) -> CycleRefs {
        if self.quantum_left == 0 {
            self.context_switch();
        }
        self.quantum_left -= 1;
        self.processes[self.current].next_cycle()
    }

    fn context_switch(&mut self) {
        let n = self.processes.len() as u64;
        if n > 1 {
            // Pick any *other* process uniformly.
            let step = 1 + self.rng.next_below(n - 1);
            self.current = ((self.current as u64 + step) % n) as usize;
        }
        self.quantum_left = self.rng.next_geometric(self.mean_switch_interval);
        self.switches += 1;
    }

    /// Number of context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// Index of the process currently scheduled.
    pub fn current_process(&self) -> usize {
        self.current
    }

    /// Materialises exactly `n` records (cycles are never split: the final
    /// cycle's data reference is included even if it lands at index `n`,
    /// so the result may contain `n + 1` records when the cut falls inside
    /// a cycle — callers that need an exact count can truncate).
    pub fn generate_records(&mut self, n: usize) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(n + 1);
        while out.len() < n {
            let cycle = self.next_cycle();
            out.push(cycle.ifetch);
            if let Some(d) = cycle.data {
                out.push(d);
            }
        }
        out.truncate(n);
        out
    }

    /// Flattens the generator into an infinite record stream.
    pub fn into_records(self) -> MultiProgramRecords {
        MultiProgramRecords {
            gen: self,
            pending: None,
        }
    }
}

/// Infinite record iterator over a [`MultiProgramGenerator`], created by
/// [`MultiProgramGenerator::into_records`].
#[derive(Debug, Clone)]
pub struct MultiProgramRecords {
    gen: MultiProgramGenerator,
    pending: Option<TraceRecord>,
}

impl Iterator for MultiProgramRecords {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if let Some(r) = self.pending.take() {
            return Some(r);
        }
        let cycle = self.gen.next_cycle();
        self.pending = cycle.data;
        Some(cycle.ifetch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;

    fn small_config(n: usize, seed: u64) -> MultiProgramConfig {
        MultiProgramConfig {
            mean_switch_interval: 100.0,
            ..MultiProgramConfig::homogeneous(n, ProcessConfig::default(), seed)
        }
    }

    #[test]
    fn homogeneous_assigns_distinct_pids_and_seeds() {
        let c = MultiProgramConfig::homogeneous(8, ProcessConfig::default(), 5);
        let pids: Vec<_> = c.processes.iter().map(|p| p.pid).collect();
        assert_eq!(pids, (0..8u8).collect::<Vec<_>>());
        let mut seeds: Vec<_> = c.processes.iter().map(|p| p.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn validation() {
        let mut c = small_config(2, 1);
        c.mean_switch_interval = 0.5;
        assert!(c.validate().is_err());
        let c = MultiProgramConfig {
            processes: vec![],
            mean_switch_interval: 100.0,
            seed: 0,
        };
        assert!(c.validate().is_err());
        let mut c = small_config(2, 1);
        c.processes[1].theta = -1.0;
        let err = c.validate().unwrap_err();
        assert!(err.contains("process 1"));
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            MultiProgramGenerator::new(small_config(3, 7))
                .unwrap()
                .generate_records(4000)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn all_processes_get_scheduled() {
        let mut gen = MultiProgramGenerator::new(small_config(4, 11)).unwrap();
        let mut seen = [false; 4];
        for _ in 0..50_000 {
            let c = gen.next_cycle();
            seen[(c.ifetch.addr.get() >> 40) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen: {seen:?}");
        assert!(gen.context_switches() > 100);
    }

    #[test]
    fn switch_interval_roughly_matches_mean() {
        let mut config = small_config(4, 13);
        config.mean_switch_interval = 50.0;
        let mut gen = MultiProgramGenerator::new(config).unwrap();
        let cycles = 100_000;
        for _ in 0..cycles {
            gen.next_cycle();
        }
        let mean = cycles as f64 / gen.context_switches() as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean interval {mean}");
    }

    #[test]
    fn single_process_never_switches_away() {
        let mut gen = MultiProgramGenerator::new(small_config(1, 17)).unwrap();
        for _ in 0..5000 {
            let c = gen.next_cycle();
            assert_eq!(c.ifetch.addr.get() >> 40, 0);
        }
    }

    #[test]
    fn generate_records_exact_length_and_structure() {
        let mut gen = MultiProgramGenerator::new(small_config(2, 19)).unwrap();
        let recs = gen.generate_records(10_001);
        assert_eq!(recs.len(), 10_001);
        assert_eq!(recs[0].kind, AccessKind::InstructionFetch);
    }

    #[test]
    fn record_iterator_matches_generate_records() {
        let recs_a = MultiProgramGenerator::new(small_config(2, 23))
            .unwrap()
            .generate_records(2000);
        let recs_b: Vec<_> = MultiProgramGenerator::new(small_config(2, 23))
            .unwrap()
            .into_records()
            .take(2000)
            .collect();
        assert_eq!(recs_a, recs_b);
    }
}
