//! Core trace record types: memory access kinds and addresses.

use std::fmt;

/// The kind of a single memory reference issued by the CPU.
///
/// The paper (§2) defines miss ratios in terms of *read* requests only —
/// loads and instruction fetches — because reads and writes affect overall
/// performance through quite different mechanisms. [`AccessKind::is_read`]
/// captures that definition.
///
/// # Examples
///
/// ```
/// use mlc_trace::AccessKind;
///
/// assert!(AccessKind::InstructionFetch.is_read());
/// assert!(AccessKind::Read.is_read());
/// assert!(!AccessKind::Write.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// An instruction fetch (Dinero label `2`).
    InstructionFetch,
    /// A data load (Dinero label `0`).
    Read,
    /// A data store (Dinero label `1`).
    Write,
}

impl AccessKind {
    /// Every access kind, in Dinero label order (`Read`, `Write`,
    /// `InstructionFetch`).
    pub const ALL: [AccessKind; 3] = [
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::InstructionFetch,
    ];

    /// The number of access kinds.
    ///
    /// Codecs that keep per-kind state in fixed-size tables (e.g. the
    /// binary trace format's delta bases) assert their table length
    /// against this at compile time, so adding a variant cannot silently
    /// corrupt an index space.
    pub const COUNT: usize = Self::ALL.len();

    /// Returns `true` for loads and instruction fetches.
    ///
    /// This is the paper's definition of a "read request": the set of
    /// references over which all miss ratios are computed.
    #[inline]
    pub fn is_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }

    /// Returns `true` for data accesses (loads and stores), i.e. everything
    /// that is routed to a data cache in a split-cache configuration.
    #[inline]
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstructionFetch)
    }

    /// Returns `true` for stores.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// The Dinero `.din` label for this access kind (`0`/`1`/`2`).
    #[inline]
    pub const fn din_label(self) -> u8 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::InstructionFetch => 2,
        }
    }

    /// Parses a Dinero `.din` label.
    ///
    /// Returns `None` for labels other than `0`, `1` and `2` (Dinero's
    /// extended labels `3`/`4` — escape records — carry no address
    /// semantics we model).
    #[inline]
    pub fn from_din_label(label: u8) -> Option<Self> {
        match label {
            0 => Some(AccessKind::Read),
            1 => Some(AccessKind::Write),
            2 => Some(AccessKind::InstructionFetch),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstructionFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// A byte address in the simulated machine's physical address space.
///
/// A newtype over `u64` so addresses cannot be confused with sizes, counts
/// or cycle times in APIs that juggle all four.
///
/// # Examples
///
/// ```
/// use mlc_trace::Address;
///
/// let a = Address::new(0x1a40);
/// assert_eq!(a.get(), 0x1a40);
/// assert_eq!(a.block_index(16), 0x1a4);
/// assert_eq!(a.block_base(16), Address::new(0x1a40));
/// assert_eq!(format!("{a}"), "0x0000000000001a40");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Address(addr)
    }

    /// The raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The index of the block containing this address, for the given
    /// (power-of-two) block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_bytes` is not a power of two.
    #[inline]
    pub fn block_index(self, block_bytes: u64) -> u64 {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 >> block_bytes.trailing_zeros()
    }

    /// The base (first byte) address of the block containing this address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_bytes` is not a power of two.
    #[inline]
    pub fn block_base(self, block_bytes: u64) -> Address {
        debug_assert!(block_bytes.is_power_of_two());
        Address(self.0 & !(block_bytes - 1))
    }

    /// The offset of this address within its containing block.
    #[inline]
    pub fn block_offset(self, block_bytes: u64) -> u64 {
        debug_assert!(block_bytes.is_power_of_two());
        self.0 & (block_bytes - 1)
    }

    /// Returns this address displaced by `delta` bytes (wrapping).
    #[inline]
    pub fn wrapping_add(self, delta: u64) -> Address {
        Address(self.0.wrapping_add(delta))
    }
}

impl From<u64> for Address {
    fn from(v: u64) -> Self {
        Address(v)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// One record of a memory reference trace: an access kind plus an address.
///
/// The CPU model interprets a stream of records as follows: every
/// [`AccessKind::InstructionFetch`] begins a new (non-stall) CPU cycle, and
/// a data reference immediately following an instruction fetch executes in
/// that same cycle — matching the paper's RISC-like CPU that performs "one
/// instruction fetch and either zero or one data accesses on every clock
/// cycle".
///
/// # Examples
///
/// ```
/// use mlc_trace::{AccessKind, Address, TraceRecord};
///
/// let r = TraceRecord::new(AccessKind::Read, Address::new(0x100));
/// assert!(r.kind.is_read());
/// assert_eq!(r.addr.get(), 0x100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// What kind of reference this is.
    pub kind: AccessKind,
    /// The referenced byte address.
    pub addr: Address,
}

impl TraceRecord {
    /// Creates a new trace record.
    #[inline]
    pub const fn new(kind: AccessKind, addr: Address) -> Self {
        TraceRecord { kind, addr }
    }

    /// Convenience constructor for an instruction fetch.
    #[inline]
    pub const fn ifetch(addr: u64) -> Self {
        TraceRecord::new(AccessKind::InstructionFetch, Address::new(addr))
    }

    /// Convenience constructor for a data load.
    #[inline]
    pub const fn read(addr: u64) -> Self {
        TraceRecord::new(AccessKind::Read, Address::new(addr))
    }

    /// Convenience constructor for a data store.
    #[inline]
    pub const fn write(addr: u64) -> Self {
        TraceRecord::new(AccessKind::Write, Address::new(addr))
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_read_definition_matches_paper() {
        assert!(AccessKind::InstructionFetch.is_read());
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn access_kind_data_routing() {
        assert!(!AccessKind::InstructionFetch.is_data());
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
    }

    #[test]
    fn all_lists_every_kind_in_din_label_order() {
        assert_eq!(AccessKind::ALL.len(), AccessKind::COUNT);
        for (i, kind) in AccessKind::ALL.iter().enumerate() {
            assert_eq!(kind.din_label() as usize, i);
        }
    }

    #[test]
    fn din_labels_round_trip() {
        for kind in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::InstructionFetch,
        ] {
            assert_eq!(AccessKind::from_din_label(kind.din_label()), Some(kind));
        }
        assert_eq!(AccessKind::from_din_label(3), None);
        assert_eq!(AccessKind::from_din_label(255), None);
    }

    #[test]
    fn address_block_arithmetic() {
        let a = Address::new(0x12345);
        assert_eq!(a.block_index(16), 0x1234);
        assert_eq!(a.block_base(16).get(), 0x12340);
        assert_eq!(a.block_offset(16), 0x5);
        assert_eq!(a.block_base(1).get(), 0x12345);
    }

    #[test]
    fn address_display_is_fixed_width_hex() {
        assert_eq!(format!("{}", Address::new(0xff)), "0x00000000000000ff");
        assert_eq!(format!("{:x}", Address::new(0xff)), "ff");
        assert_eq!(format!("{:X}", Address::new(0xff)), "FF");
    }

    #[test]
    fn address_conversions() {
        let a: Address = 42u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 42);
    }

    #[test]
    fn record_constructors() {
        assert_eq!(
            TraceRecord::ifetch(4),
            TraceRecord::new(AccessKind::InstructionFetch, Address::new(4))
        );
        assert_eq!(
            TraceRecord::read(8),
            TraceRecord::new(AccessKind::Read, Address::new(8))
        );
        assert_eq!(
            TraceRecord::write(12),
            TraceRecord::new(AccessKind::Write, Address::new(12))
        );
    }

    #[test]
    fn record_display() {
        let r = TraceRecord::write(0x10);
        assert_eq!(format!("{r}"), "write 0x0000000000000010");
    }

    #[test]
    fn wrapping_add_wraps() {
        assert_eq!(Address::new(u64::MAX).wrapping_add(1), Address::new(0));
    }
}
