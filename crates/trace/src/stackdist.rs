//! One-pass LRU stack-distance analysis (Mattson et al., 1970).
//!
//! The *stack distance* of a reference is the number of distinct blocks
//! touched since the previous reference to the same block. A fully
//! associative LRU cache of capacity `C` blocks misses exactly the
//! references whose stack distance is ≥ `C` (plus first touches), so a
//! single pass over a trace yields the entire miss-ratio-versus-size
//! curve at once — the classic tool behind curves like the paper's
//! Figure 3, and an independent check of this repository's synthetic
//! workload calibration.
//!
//! The implementation is the standard O(N log N) algorithm: a Fenwick
//! tree over reference timestamps holds a 1 at the *most recent*
//! reference time of every live block, so a block's stack distance is a
//! prefix-sum query between its previous reference and now.

use std::collections::HashMap;

use crate::record::TraceRecord;

/// A growable Fenwick (binary indexed) tree over 0/1 values.
///
/// Fenwick trees cannot be extended by appending zeroed nodes (a new
/// node covers a range that includes *earlier* values), so the tree
/// keeps the raw bit array and rebuilds in O(n) whenever the index space
/// doubles — amortised O(1) per element.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
    bits: Vec<bool>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
            bits: vec![false; n],
        }
    }

    fn len(&self) -> usize {
        self.bits.len()
    }

    fn grow_to(&mut self, n: usize) {
        if n > self.bits.len() {
            let target = n.next_power_of_two().max(1024);
            self.bits.resize(target, false);
            self.tree = vec![0; target + 1];
            // Standard O(n) rebuild: seed leaves, then push each node's
            // total into its parent.
            for i in 1..=target {
                if self.bits[i - 1] {
                    self.tree[i] += 1;
                }
                let parent = i + (i & i.wrapping_neg());
                if parent <= target {
                    self.tree[parent] += self.tree[i];
                }
            }
        }
    }

    /// Sets the bit at 1-based index `i` (must currently be clear).
    fn set(&mut self, i: usize) {
        debug_assert!(!self.bits[i - 1]);
        self.bits[i - 1] = true;
        let mut i = i;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Clears the bit at 1-based index `i` (must currently be set).
    fn clear(&mut self, i: usize) {
        debug_assert!(self.bits[i - 1]);
        self.bits[i - 1] = false;
        let mut i = i;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of set bits in `1..=i`.
    fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = i.min(self.len());
        let mut sum = 0u64;
        while i > 0 {
            sum += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// The distribution of LRU stack distances of a trace, at block
/// granularity.
///
/// # Examples
///
/// ```
/// use mlc_trace::{stackdist::lru_stack_distances, TraceRecord};
///
/// // a, b, a: the second "a" has stack distance 1 (one distinct block
/// // — "b" — touched in between).
/// let trace = vec![
///     TraceRecord::read(0x00),
///     TraceRecord::read(0x40),
///     TraceRecord::read(0x00),
/// ];
/// let hist = lru_stack_distances(trace, 16);
/// assert_eq!(hist.cold_misses(), 2);
/// assert_eq!(hist.count_at(1), 1);
/// // A 1-block LRU cache misses all three; a 2-block cache hits the
/// // reuse.
/// assert_eq!(hist.miss_ratio_at(1), 1.0);
/// assert!((hist.miss_ratio_at(2) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistanceHistogram {
    /// `counts[d]` = references with stack distance exactly `d` (`d = 0`
    /// is an immediate re-reference of the most recent block).
    counts: Vec<u64>,
    cold: u64,
    total: u64,
    block_bytes: u64,
}

impl StackDistanceHistogram {
    /// References that touched a never-before-seen block (compulsory
    /// misses for any cache size).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Total references analysed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The block granularity the trace was analysed at.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// References with stack distance exactly `d`.
    pub fn count_at(&self, d: usize) -> u64 {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Number of references with stack distance ≥ `capacity_blocks`,
    /// plus cold misses — the miss *count* of a fully associative LRU
    /// cache with that many blocks.
    pub fn misses_at(&self, capacity_blocks: u64) -> u64 {
        let from = capacity_blocks as usize;
        let tail: u64 = self.counts.iter().skip(from).sum();
        tail + self.cold
    }

    /// The fully-associative-LRU miss ratio at `capacity_blocks`.
    ///
    /// Returns NaN for an empty histogram.
    pub fn miss_ratio_at(&self, capacity_blocks: u64) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.misses_at(capacity_blocks) as f64 / self.total as f64
        }
    }

    /// The whole miss-ratio curve for a ladder of cache sizes in bytes.
    pub fn miss_ratio_curve(&self, sizes_bytes: &[u64]) -> Vec<(u64, f64)> {
        sizes_bytes
            .iter()
            .map(|&s| (s, self.miss_ratio_at(s / self.block_bytes)))
            .collect()
    }

    /// The largest stack distance observed.
    pub fn max_distance(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// The mean stack distance over re-references (cold misses excluded).
    pub fn mean_distance(&self) -> Option<f64> {
        let reuses: u64 = self.counts.iter().sum();
        if reuses == 0 {
            return None;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as f64 * c as f64)
            .sum();
        Some(weighted / reuses as f64)
    }
}

/// Computes the LRU stack-distance histogram of `records` at the given
/// (power-of-two) block granularity, in one pass.
///
/// All reference kinds are analysed together (the structure is about
/// reuse, not read/write semantics).
///
/// # Panics
///
/// Panics if `block_bytes` is zero or not a power of two.
pub fn lru_stack_distances<I>(records: I, block_bytes: u64) -> StackDistanceHistogram
where
    I: IntoIterator<Item = TraceRecord>,
{
    assert!(
        block_bytes.is_power_of_two(),
        "block_bytes must be a power of two, got {block_bytes}"
    );
    let mut last_ref: HashMap<u64, usize> = HashMap::new();
    let mut fenwick = Fenwick::new(1024);
    let mut counts: Vec<u64> = Vec::new();
    let mut cold = 0u64;
    let mut total = 0u64;
    // 1-based timestamp of the next reference.
    let mut now = 0usize;

    for rec in records {
        now += 1;
        total += 1;
        fenwick.grow_to(now);
        let block = rec.addr.block_index(block_bytes);
        match last_ref.insert(block, now) {
            None => cold += 1,
            Some(prev) => {
                // Distinct blocks touched strictly after `prev`: each has
                // exactly one live timestamp in (prev, now).
                let depth = (fenwick.prefix_sum(now - 1) - fenwick.prefix_sum(prev)) as usize;
                if counts.len() <= depth {
                    counts.resize(depth + 1, 0);
                }
                counts[depth] += 1;
                fenwick.clear(prev);
            }
        }
        fenwick.set(now);
    }
    StackDistanceHistogram {
        counts,
        cold,
        total,
        block_bytes,
    }
}

/// One-pass *all-associativity* analysis at a fixed set count: per-set
/// LRU stack distances (Mattson's inclusion property applied within each
/// set, as in Hill's all-associativity simulation). The returned
/// histogram's `misses_at(a)` is the exact miss count of an `a`-way LRU
/// cache with `sets` sets — for every associativity at once.
///
/// # Panics
///
/// Panics unless `sets` and `block_bytes` are powers of two.
///
/// # Examples
///
/// ```
/// use mlc_trace::{stackdist::associativity_histogram, TraceRecord};
///
/// // Two blocks aliasing in a 4-set cache: direct-mapped thrashes,
/// // 2-way holds both.
/// let trace: Vec<_> = (0..10u64)
///     .map(|i| TraceRecord::read(if i % 2 == 0 { 0x00 } else { 0x100 }))
///     .collect();
/// let hist = associativity_histogram(trace, 4, 64);
/// assert_eq!(hist.misses_at(1), 10); // DM: every access misses
/// assert_eq!(hist.misses_at(2), 2); // 2-way: only the two cold misses
/// ```
pub fn associativity_histogram<I>(records: I, sets: u64, block_bytes: u64) -> StackDistanceHistogram
where
    I: IntoIterator<Item = TraceRecord>,
{
    assert!(
        block_bytes.is_power_of_two(),
        "block_bytes must be a power of two, got {block_bytes}"
    );
    assert!(
        sets.is_power_of_two(),
        "sets must be a power of two, got {sets}"
    );
    let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
    let mut counts: Vec<u64> = Vec::new();
    let mut cold = 0u64;
    let mut total = 0u64;
    for rec in records {
        total += 1;
        let block = rec.addr.block_index(block_bytes);
        let set = (block % sets) as usize;
        let stack = &mut stacks[set];
        match stack.iter().position(|&b| b == block) {
            Some(depth) => {
                if counts.len() <= depth {
                    counts.resize(depth + 1, 0);
                }
                counts[depth] += 1;
                stack.remove(depth);
            }
            None => cold += 1,
        }
        stack.insert(0, block);
    }
    StackDistanceHistogram {
        counts,
        cold,
        total,
        block_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn reads(blocks: &[u64]) -> Vec<TraceRecord> {
        blocks.iter().map(|&b| TraceRecord::read(b * 64)).collect()
    }

    #[test]
    fn simple_reuse_pattern() {
        // a b c b a : distances — a,b,c cold; b=1 (c), a=2 (b,c).
        let h = lru_stack_distances(reads(&[0, 1, 2, 1, 0]), 64);
        assert_eq!(h.cold_misses(), 3);
        assert_eq!(h.count_at(0), 0);
        assert_eq!(h.count_at(1), 1);
        assert_eq!(h.count_at(2), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_distance(), Some(2));
    }

    #[test]
    fn immediate_rereference_is_distance_zero() {
        let h = lru_stack_distances(reads(&[7, 7, 7]), 64);
        assert_eq!(h.cold_misses(), 1);
        assert_eq!(h.count_at(0), 2);
        assert_eq!(h.miss_ratio_at(1), 1.0 / 3.0);
    }

    #[test]
    fn cyclic_pattern_distances() {
        // Cycling over k blocks gives distance k-1 for every reuse.
        let k = 5u64;
        let mut seq = Vec::new();
        for _ in 0..10 {
            for b in 0..k {
                seq.push(b);
            }
        }
        let h = lru_stack_distances(reads(&seq), 64);
        assert_eq!(h.cold_misses(), k);
        assert_eq!(h.count_at(4), 45);
        // LRU of capacity 5 holds the whole loop; capacity 4 thrashes.
        assert_eq!(h.misses_at(5), 5);
        assert_eq!(h.misses_at(4), 50);
    }

    #[test]
    fn matches_naive_lru_simulation() {
        use crate::synth::Xoshiro;
        // Differential test: the histogram's miss counts must equal a
        // directly simulated fully associative LRU cache at every size.
        let mut rng = Xoshiro::seed_from_u64(77);
        let dist = crate::synth::StackDepthDistribution::new(0.7, 3.0);
        let mut engine = crate::synth::StackEngine::new(dist, 1 << 16, 9);
        let blocks: Vec<u64> = (0..4000).map(|_| engine.next_unit().0).collect();
        let _ = &mut rng;
        let trace = reads(&blocks);
        let h = lru_stack_distances(trace.iter().copied(), 64);
        for capacity in [1u64, 2, 4, 8, 16, 64, 256] {
            let mut lru: Vec<u64> = Vec::new();
            let mut misses = 0u64;
            for &b in &blocks {
                if let Some(pos) = lru.iter().position(|&x| x == b) {
                    lru.remove(pos);
                } else {
                    misses += 1;
                }
                lru.insert(0, b);
                lru.truncate(capacity as usize);
            }
            assert_eq!(
                h.misses_at(capacity),
                misses,
                "divergence at capacity {capacity}"
            );
        }
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let blocks: Vec<u64> = (0..2000u64).map(|i| (i * i) % 97).collect();
        let h = lru_stack_distances(reads(&blocks), 64);
        let sizes: Vec<u64> = (0..8).map(|i| 64u64 << i).collect();
        let curve = h.miss_ratio_curve(&sizes);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn block_granularity_matters() {
        // Two addresses in the same 64B block are one block at 64B
        // granularity but two at 16B.
        let trace = [TraceRecord::read(0x00), TraceRecord::read(0x20)];
        let coarse = lru_stack_distances(trace.iter().copied(), 64);
        let fine = lru_stack_distances(trace.iter().copied(), 16);
        assert_eq!(coarse.cold_misses(), 1);
        assert_eq!(fine.cold_misses(), 2);
    }

    #[test]
    fn empty_trace() {
        let h = lru_stack_distances(Vec::new(), 64);
        assert_eq!(h.total(), 0);
        assert!(h.miss_ratio_at(4).is_nan());
        assert_eq!(h.max_distance(), None);
        assert_eq!(h.mean_distance(), None);
    }

    #[test]
    fn mean_distance_weighted() {
        // distances: 1 and 3 → mean 2.
        let h = lru_stack_distances(reads(&[0, 1, 0, 2, 3, 1]), 64);
        // reuse of 0 at depth 1; reuse of 1 at depth 3.
        assert_eq!(h.count_at(1), 1);
        assert_eq!(h.count_at(3), 1);
        assert_eq!(h.mean_distance(), Some(2.0));
    }

    #[test]
    fn synthetic_generator_matches_its_configured_tail() {
        // End-to-end calibration check: the generator's D-stream stack
        // distances should follow its configured survival function.
        use crate::synth::{StackDepthDistribution, StackEngine};
        let dist = StackDepthDistribution::new(0.85, 9.2);
        let mut engine = StackEngine::new(dist, 1 << 20, 3);
        let blocks: Vec<u64> = (0..200_000).map(|_| engine.next_unit().0).collect();
        let h = lru_stack_distances(reads(&blocks), 64);
        for depth in [64u64, 256, 1024] {
            let measured = h.miss_ratio_at(depth);
            let model = dist.survival(depth);
            assert!(
                (measured - model).abs() / model < 0.35,
                "depth {depth}: measured {measured} vs model {model}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        lru_stack_distances(Vec::new(), 48);
    }

    #[test]
    fn associativity_histogram_matches_set_associative_lru() {
        // Differential test against a per-set naive LRU cache at every
        // associativity.
        let blocks: Vec<u64> = (0..3000u64).map(|i| (i * 11) % 96).collect();
        let trace = reads(&blocks);
        let sets = 8u64;
        let hist = associativity_histogram(trace.iter().copied(), sets, 64);
        for ways in [1usize, 2, 4, 8] {
            let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
            let mut misses = 0u64;
            for &b in &blocks {
                let set = (b % sets) as usize;
                let stack = &mut stacks[set];
                if let Some(pos) = stack.iter().position(|&x| x == b) {
                    stack.remove(pos);
                } else {
                    misses += 1;
                }
                stack.insert(0, b);
                stack.truncate(ways);
            }
            assert_eq!(hist.misses_at(ways as u64), misses, "{ways}-way");
        }
    }

    #[test]
    fn associativity_histogram_is_monotone_in_ways() {
        let blocks: Vec<u64> = (0..2000u64).map(|i| (i * 7) % 61).collect();
        let hist = associativity_histogram(reads(&blocks), 16, 64);
        let mut prev = u64::MAX;
        for a in 1..=32u64 {
            let m = hist.misses_at(a);
            assert!(m <= prev, "{a}-way: {m} > {prev}");
            prev = m;
        }
        assert_eq!(hist.misses_at(64), hist.cold_misses());
    }

    #[test]
    #[should_panic(expected = "sets must be a power of two")]
    fn associativity_rejects_bad_sets() {
        associativity_histogram(Vec::new(), 3, 64);
    }
}
