//! Reading and writing the classic Dinero `.din` text trace format.
//!
//! Each line of a `.din` trace is `LABEL ADDRESS`, where `LABEL` is `0` for
//! a data read, `1` for a data write and `2` for an instruction fetch, and
//! `ADDRESS` is a hexadecimal byte address. Blank lines and lines beginning
//! with `#` are ignored (a small, backwards-compatible extension so traces
//! can carry provenance comments).
//!
//! This is the format consumed by Mark Hill's DineroIII/DineroIV simulators
//! and produced by many historical tracing tools, including the trace
//! toolchains the paper's group used.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::error::TraceError;
use crate::fault::{absorb_fault, FaultPolicy, IngestReport};
use crate::record::{AccessKind, Address, TraceRecord};

/// Parses one `.din` line: `Ok(None)` for blanks and comments,
/// `Ok(Some(record))` for a record, a [`TraceError::ParseDin`] carrying
/// `line_no` otherwise. The single parser behind both the strict
/// [`DinReader`] and the degraded-mode [`read_din_with`].
fn parse_din_line(line_no: u64, line: &str) -> Result<Option<TraceRecord>, TraceError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut parts = trimmed.split_whitespace();
    let label_str = parts.next().ok_or_else(|| TraceError::ParseDin {
        line: line_no,
        reason: "empty record".into(),
    })?;
    let addr_str = parts.next().ok_or_else(|| TraceError::ParseDin {
        line: line_no,
        reason: "missing address field".into(),
    })?;
    let label: u8 = label_str.parse().map_err(|_| TraceError::ParseDin {
        line: line_no,
        reason: format!("invalid label {label_str:?}"),
    })?;
    let kind = AccessKind::from_din_label(label).ok_or_else(|| TraceError::ParseDin {
        line: line_no,
        reason: format!("unsupported label {label}"),
    })?;
    let addr = u64::from_str_radix(addr_str, 16).map_err(|_| TraceError::ParseDin {
        line: line_no,
        reason: format!("invalid hex address {addr_str:?}"),
    })?;
    Ok(Some(TraceRecord::new(kind, Address::new(addr))))
}

/// Writes a trace to `w` in `.din` format.
///
/// Records are written one per line as `LABEL HEXADDR`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// use mlc_trace::{din, TraceRecord};
///
/// let mut buf = Vec::new();
/// din::write_din(&mut buf, [TraceRecord::read(0x100), TraceRecord::ifetch(0x4)])?;
/// assert_eq!(String::from_utf8(buf).unwrap(), "0 100\n2 4\n");
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn write_din<W, I>(w: W, records: I) -> Result<(), TraceError>
where
    W: Write,
    I: IntoIterator<Item = TraceRecord>,
{
    let mut w = io::BufWriter::new(w);
    for r in records {
        writeln!(w, "{} {:x}", r.kind.din_label(), r.addr)?;
    }
    w.flush()?;
    Ok(())
}

/// A streaming reader for `.din` traces.
///
/// Iterates over `Result<TraceRecord, TraceError>`, reporting malformed
/// lines with their line numbers. Use [`read_din`] to collect an entire
/// trace at once.
///
/// # Examples
///
/// ```
/// use mlc_trace::din::DinReader;
/// use mlc_trace::TraceRecord;
///
/// let text = "2 400\n0 1a40\n1 1a44\n";
/// let records: Result<Vec<_>, _> = DinReader::new(text.as_bytes()).collect();
/// assert_eq!(
///     records?,
///     vec![
///         TraceRecord::ifetch(0x400),
///         TraceRecord::read(0x1a40),
///         TraceRecord::write(0x1a44),
///     ]
/// );
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct DinReader<R> {
    lines: io::Lines<BufReader<R>>,
    line_no: u64,
}

impl<R: Read> DinReader<R> {
    /// Creates a reader over any [`Read`] implementation.
    ///
    /// A `&mut` reference to a reader is itself a reader, so this can be
    /// called with `&mut file` if the file is needed afterwards.
    pub fn new(reader: R) -> Self {
        DinReader {
            lines: BufReader::new(reader).lines(),
            line_no: 0,
        }
    }
}

impl<R: Read> Iterator for DinReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            match self.lines.next()? {
                Err(e) => return Some(Err(e.into())),
                Ok(line) => match parse_din_line(self.line_no, &line) {
                    Err(e) => return Some(Err(e)),
                    Ok(Some(rec)) => return Some(Ok(rec)),
                    Ok(None) => continue,
                },
            }
        }
    }
}

/// Reads an entire `.din` trace into memory.
///
/// # Errors
///
/// Returns the first I/O or parse error encountered.
///
/// # Examples
///
/// ```
/// use mlc_trace::din;
///
/// let records = din::read_din("2 0\n0 40\n".as_bytes())?;
/// assert_eq!(records.len(), 2);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn read_din<R: Read>(reader: R) -> Result<Vec<TraceRecord>, TraceError> {
    DinReader::new(reader).collect()
}

/// Reads a `.din` trace under a [`FaultPolicy`]: with
/// [`FaultPolicy::Skip`], each malformed line is written to the
/// `quarantine` sidecar (when given) and skipped, until more than
/// `budget` lines have been dropped. I/O errors are always fatal —
/// a line that cannot be *read* is different from one that cannot be
/// *parsed*.
///
/// # Errors
///
/// Under [`FaultPolicy::Fail`], exactly the errors of [`read_din`].
/// Under [`FaultPolicy::Skip`], [`TraceError::FaultBudget`] once the
/// budget is exceeded, or any I/O error.
///
/// # Examples
///
/// ```
/// use mlc_trace::{din, FaultPolicy};
///
/// let text = "2 4\nnot a record\n0 8\n";
/// let mut sidecar = Vec::new();
/// let (records, report) = din::read_din_with(
///     text.as_bytes(),
///     FaultPolicy::Skip { budget: 4 },
///     Some(&mut sidecar),
/// )?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(report.quarantined, 1);
/// assert!(String::from_utf8(sidecar).unwrap().contains("not a record"));
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn read_din_with<R: Read>(
    reader: R,
    policy: FaultPolicy,
    quarantine: Option<&mut dyn Write>,
) -> Result<(Vec<TraceRecord>, IngestReport), TraceError> {
    let mut quarantine = quarantine;
    let mut out = Vec::new();
    let mut report = IngestReport::default();
    let mut line_no = 0u64;
    for line in BufReader::new(reader).lines() {
        line_no += 1;
        let line = line?;
        match parse_din_line(line_no, &line) {
            Ok(Some(rec)) => out.push(rec),
            Ok(None) => {}
            Err(e) => absorb_fault(
                policy,
                &mut report,
                &mut quarantine,
                &format!("line {line_no}: {line}"),
                e,
            )?,
        }
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let recs = vec![
            TraceRecord::ifetch(0x1000),
            TraceRecord::read(0xdeadbeef),
            TraceRecord::write(0x0),
            TraceRecord::ifetch(0x1004),
        ];
        let mut buf = Vec::new();
        write_din(&mut buf, recs.iter().copied()).unwrap();
        let back = read_din(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn skips_blank_lines_and_comments() {
        let text = "# provenance: synthetic\n\n2 4\n\n# mid comment\n0 8\n";
        let recs = read_din(text.as_bytes()).unwrap();
        assert_eq!(recs, vec![TraceRecord::ifetch(4), TraceRecord::read(8)]);
    }

    #[test]
    fn tolerates_extra_whitespace() {
        let text = "  2\t 4  \n0    8\n";
        let recs = read_din(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn rejects_bad_label() {
        let err = read_din("9 4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::ParseDin { line: 1, .. }));
    }

    #[test]
    fn rejects_non_numeric_label() {
        let err = read_din("x 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid label"));
    }

    #[test]
    fn rejects_missing_address() {
        let err = read_din("2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing address"));
    }

    #[test]
    fn rejects_bad_address() {
        let err = read_din("2 zzz\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid hex address"));
    }

    #[test]
    fn error_reports_correct_line() {
        let err = read_din("2 4\n0 8\n1 oops\n".as_bytes()).unwrap_err();
        match err {
            TraceError::ParseDin { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(read_din("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn addresses_are_hex() {
        let recs = read_din("0 ff\n".as_bytes()).unwrap();
        assert_eq!(recs[0].addr.get(), 255);
    }

    #[test]
    fn degraded_fail_matches_strict_reader() {
        let text = "2 4\n9 8\n";
        let strict = read_din(text.as_bytes()).unwrap_err();
        let degraded = read_din_with(text.as_bytes(), FaultPolicy::Fail, None).unwrap_err();
        assert_eq!(strict.to_string(), degraded.to_string());
    }

    #[test]
    fn degraded_skip_quarantines_with_line_numbers() {
        let text = "2 4\n3 zz\n0 8\nnot a record\n1 c\n";
        let mut sidecar = Vec::new();
        let (recs, report) = read_din_with(
            text.as_bytes(),
            FaultPolicy::Skip { budget: 2 },
            Some(&mut sidecar),
        )
        .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(report.quarantined, 2);
        assert!(!report.truncated);
        let sidecar = String::from_utf8(sidecar).unwrap();
        assert_eq!(sidecar, "line 2: 3 zz\nline 4: not a record\n");
    }

    #[test]
    fn degraded_skip_fails_typed_over_budget() {
        let text = "bad\nbad\nbad\n";
        let err =
            read_din_with(text.as_bytes(), FaultPolicy::Skip { budget: 2 }, None).unwrap_err();
        assert!(matches!(err, TraceError::FaultBudget { budget: 2, .. }));
    }

    #[test]
    fn degraded_zero_budget_tolerates_clean_input_only() {
        let (recs, report) =
            read_din_with("2 4\n".as_bytes(), FaultPolicy::Skip { budget: 0 }, None).unwrap();
        assert_eq!((recs.len(), report.quarantined), (1, 0));
        assert!(read_din_with("x\n".as_bytes(), FaultPolicy::Skip { budget: 0 }, None).is_err());
    }
}
