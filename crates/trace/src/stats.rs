//! Descriptive statistics over a reference trace.
//!
//! The paper characterises its traces by the fraction of non-stall cycles
//! containing a data reference (~50 %) and the fraction of data references
//! that are reads (~35 %). [`TraceStats`] measures exactly those quantities
//! plus footprint information, so synthetic traces can be validated against
//! the paper's stated mix.

use std::collections::HashSet;

use crate::error::TraceError;
use crate::record::{AccessKind, TraceRecord};

/// Aggregate statistics of a reference trace.
///
/// # Examples
///
/// ```
/// use mlc_trace::{TraceRecord, TraceStats};
///
/// let trace = vec![
///     TraceRecord::ifetch(0x0),
///     TraceRecord::read(0x100),
///     TraceRecord::ifetch(0x4),
///     TraceRecord::ifetch(0x8),
///     TraceRecord::write(0x104),
/// ];
/// let stats = TraceStats::from_records(trace.iter().copied(), 16)?;
/// assert_eq!(stats.ifetches, 3);
/// assert_eq!(stats.reads, 1);
/// assert_eq!(stats.writes, 1);
/// assert_eq!(stats.cpu_read_references(), 4); // ifetches + loads
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Number of instruction fetches.
    pub ifetches: u64,
    /// Number of data loads.
    pub reads: u64,
    /// Number of data stores.
    pub writes: u64,
    /// Number of distinct blocks touched, at the block size passed to
    /// [`TraceStats::from_records`].
    pub unique_blocks: u64,
    /// The block size (bytes) used for the footprint computation.
    pub block_bytes: u64,
}

impl TraceStats {
    /// Computes statistics over `records`, measuring footprint at the given
    /// (power-of-two) block granularity.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadBlockSize`] if `block_bytes` is zero or
    /// not a power of two.
    pub fn from_records<I>(records: I, block_bytes: u64) -> Result<Self, TraceError>
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        if !block_bytes.is_power_of_two() {
            return Err(TraceError::BadBlockSize(block_bytes));
        }
        let mut stats = TraceStats {
            block_bytes,
            ..TraceStats::default()
        };
        let mut blocks = HashSet::new();
        for r in records {
            match r.kind {
                AccessKind::InstructionFetch => stats.ifetches += 1,
                AccessKind::Read => stats.reads += 1,
                AccessKind::Write => stats.writes += 1,
            }
            blocks.insert(r.addr.block_index(block_bytes));
        }
        stats.unique_blocks = blocks.len() as u64;
        Ok(stats)
    }

    /// Total number of references of any kind.
    pub fn total(&self) -> u64 {
        self.ifetches + self.reads + self.writes
    }

    /// Number of data references (loads + stores).
    pub fn data_references(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of CPU read references (loads + instruction fetches) — the
    /// denominator of every *global* miss ratio in the paper.
    pub fn cpu_read_references(&self) -> u64 {
        self.ifetches + self.reads
    }

    /// Fraction of instruction fetches that are accompanied by a data
    /// reference. Under the paper's CPU model (one ifetch per non-stall
    /// cycle) this is the fraction of non-stall cycles containing a data
    /// reference — the paper reports ~0.5 for its traces.
    ///
    /// Returns `None` for a trace with no instruction fetches.
    pub fn data_per_ifetch(&self) -> Option<f64> {
        if self.ifetches == 0 {
            None
        } else {
            Some(self.data_references() as f64 / self.ifetches as f64)
        }
    }

    /// Fraction of data references that are loads — the paper reports ~0.35
    /// for its traces.
    ///
    /// Returns `None` for a trace with no data references.
    pub fn read_fraction_of_data(&self) -> Option<f64> {
        let d = self.data_references();
        if d == 0 {
            None
        } else {
            Some(self.reads as f64 / d as f64)
        }
    }

    /// Total footprint in bytes at the measured block granularity.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks * self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::ifetch(0x0),
            TraceRecord::read(0x100),
            TraceRecord::ifetch(0x4),
            TraceRecord::write(0x104),
            TraceRecord::ifetch(0x8),
            TraceRecord::ifetch(0xc),
            TraceRecord::read(0x200),
        ]
    }

    #[test]
    fn counts_by_kind() {
        let s = TraceStats::from_records(trace(), 16).unwrap();
        assert_eq!(s.ifetches, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 7);
        assert_eq!(s.data_references(), 3);
        assert_eq!(s.cpu_read_references(), 6);
    }

    #[test]
    fn footprint_at_block_granularity() {
        // Blocks of 16 bytes: {0x0}, {0x100}, {0x200} — ifetches 0..0xc share
        // block 0, data at 0x100/0x104 share one block.
        let s = TraceStats::from_records(trace(), 16).unwrap();
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.footprint_bytes(), 48);
    }

    #[test]
    fn footprint_shrinks_with_larger_blocks() {
        let fine = TraceStats::from_records(trace(), 4).unwrap().unique_blocks;
        let coarse = TraceStats::from_records(trace(), 1024)
            .unwrap()
            .unique_blocks;
        assert!(coarse <= fine);
    }

    #[test]
    fn mix_fractions() {
        let s = TraceStats::from_records(trace(), 16).unwrap();
        let dpf = s.data_per_ifetch().unwrap();
        assert!((dpf - 0.75).abs() < 1e-12);
        let rf = s.read_fraction_of_data().unwrap();
        assert!((rf - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_fractions_are_none() {
        let s = TraceStats::from_records(std::iter::empty(), 16).unwrap();
        assert_eq!(s.data_per_ifetch(), None);
        assert_eq!(s.read_fraction_of_data(), None);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn rejects_non_power_of_two_blocks() {
        for bad in [0, 3, 24] {
            match TraceStats::from_records(trace(), bad) {
                Err(TraceError::BadBlockSize(b)) => assert_eq!(b, bad),
                other => panic!("expected BadBlockSize, got {other:?}"),
            }
        }
    }
}
