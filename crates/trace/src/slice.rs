//! Zero-copy binary trace decoding over in-memory byte slices.
//!
//! The [`binary`](crate::binary) module streams through `Read`, paying a
//! buffered-reader round trip per record (and, for v2, per varint
//! *byte* before the fill-buf rework). When the whole trace is already
//! in memory — a full-buffer file read, an mmap, a network body — the
//! decoder can instead walk a `&[u8]` directly: no copies into
//! intermediate record buffers, bounds checks amortized per token, and
//! the v1 fixed-width payload decoded block-wise.
//!
//! The two paths are **behaviourally identical** by contract, and the
//! `slice_props` property suite enforces it byte-for-byte: identical
//! records, identical typed error messages, identical quarantine
//! sidecar lines and [`IngestReport`]s across every-offset truncations
//! and bit-flips of the input. Anything the `Read` path accepts,
//! rejects or quarantines, this path accepts, rejects or quarantines
//! identically — the only divergence is speed.
//!
//! Entry points:
//!
//! * [`read_binary_slice`] / [`read_binary_slice_with`] — the slice
//!   twins of `read_binary` / `read_binary_with`.
//! * [`SliceRecords`] — a strict streaming iterator for pipelines that
//!   want records without materializing a `Vec<TraceRecord>`.

use std::io::Write;

use crate::binary::{
    header_check, zigzag_decode, HEADER_LEN, KIND_SLOTS, MAGIC, RECORD_LEN, VERSION,
    VERSION_COMPRESSED,
};
use crate::error::TraceError;
use crate::fault::{absorb_fault, hex_bytes, FaultPolicy, IngestReport};
use crate::record::{AccessKind, Address, TraceRecord};

/// A validated binary trace header over a slice: version, declared
/// record count, and the payload offset.
#[derive(Debug, Clone, Copy)]
struct SliceHeader {
    version: u16,
    count: usize,
}

/// Parses and validates the 16-byte header, with the exact error
/// messages of the `Read`-based path.
fn parse_header(bytes: &[u8]) -> Result<SliceHeader, TraceError> {
    if bytes.len() < HEADER_LEN {
        return Err(TraceError::ParseBinary("truncated header".into()));
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("length checked");
    if header[..4] != MAGIC {
        return Err(TraceError::ParseBinary("bad magic".into()));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION && version != VERSION_COMPRESSED {
        return Err(TraceError::ParseBinary(format!(
            "unsupported version {version}"
        )));
    }
    let stored_check = u16::from_le_bytes([header[6], header[7]]);
    if stored_check != header_check(header) {
        return Err(TraceError::ParseBinary(
            "header check mismatch (corrupt version or record count)".into(),
        ));
    }
    let mut count_bytes = [0u8; 8];
    count_bytes.copy_from_slice(&header[8..16]);
    let count: usize = u64::from_le_bytes(count_bytes)
        .try_into()
        .map_err(|_| TraceError::ParseBinary("record count overflows usize".into()))?;
    Ok(SliceHeader { version, count })
}

/// Outcome of decoding one v2 token from a slice.
pub(crate) enum Token {
    /// `(label, zigzag, token_len)` — a complete token.
    Complete(u8, u64, usize),
    /// The slice ended mid-token; the payload holds every byte consumed
    /// (possibly none), exactly what the `Read` path would have
    /// captured for the quarantine line.
    Truncated(usize),
    /// The varint encoding is invalid; the stream cannot be resynced.
    Invalid(&'static str),
}

/// Decodes one v2 token starting at `pos`, mirroring the capture
/// semantics of the streaming `read_varint_capturing` exactly: at most
/// 1 + 10 bytes, a 10th varint byte may carry only the top bit of the
/// u64, and continuation past 10 varint bytes is invalid.
#[inline]
pub(crate) fn decode_token(bytes: &[u8], pos: usize) -> Token {
    const MAX_BYTES: usize = 10;
    let Some(&first) = bytes.get(pos) else {
        return Token::Truncated(0);
    };
    let label = first & 0b11;
    let mut zigzag = u64::from((first >> 2) & 0x1f);
    if first & 0x80 == 0 {
        return Token::Complete(label, zigzag, 1);
    }
    let mut value = 0u64;
    for i in 0..MAX_BYTES {
        let Some(&byte) = bytes.get(pos + 1 + i) else {
            return Token::Truncated(1 + i);
        };
        let payload = u64::from(byte & 0x7f);
        if i == MAX_BYTES - 1 && payload > 1 {
            return Token::Invalid("varint overflows 64 bits");
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            zigzag |= value << 5;
            return Token::Complete(label, zigzag, 1 + i + 1);
        }
    }
    Token::Invalid("varint continues past 10 bytes")
}

/// Reads an entire binary trace from an in-memory slice — the
/// zero-copy twin of [`read_binary`](crate::binary::read_binary).
///
/// # Errors
///
/// Returns [`TraceError::ParseBinary`] if the magic, version, record
/// count or any record is malformed, with messages identical to the
/// `Read`-based path.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, slice, TraceRecord};
///
/// let recs = vec![TraceRecord::ifetch(0x4), TraceRecord::write(0x100)];
/// let mut buf = Vec::new();
/// binary::write_compressed(&mut buf, &recs)?;
/// assert_eq!(slice::read_binary_slice(&buf)?, recs);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn read_binary_slice(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    read_binary_slice_with(bytes, FaultPolicy::Fail, None).map(|(records, _)| records)
}

/// Reads a binary trace from an in-memory slice under a
/// [`FaultPolicy`] — the zero-copy twin of
/// [`read_binary_with`](crate::binary::read_binary_with), with
/// identical recoverable/fatal fault classification, identical typed
/// errors and identical quarantine sidecar lines.
///
/// # Errors
///
/// Exactly as [`read_binary_with`](crate::binary::read_binary_with),
/// except that slices cannot raise I/O errors.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, slice, FaultPolicy, TraceRecord};
///
/// let recs = vec![TraceRecord::ifetch(0x4), TraceRecord::write(0x100)];
/// let mut buf = Vec::new();
/// binary::write_binary(&mut buf, &recs)?;
/// buf[16] = 7; // corrupt the first record's kind byte
/// let (records, report) =
///     slice::read_binary_slice_with(&buf, FaultPolicy::Skip { budget: 1 }, None)?;
/// assert_eq!(records, vec![TraceRecord::write(0x100)]);
/// assert_eq!(report.quarantined, 1);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn read_binary_slice_with(
    bytes: &[u8],
    policy: FaultPolicy,
    quarantine: Option<&mut dyn Write>,
) -> Result<(Vec<TraceRecord>, IngestReport), TraceError> {
    let mut quarantine = quarantine;
    let mut report = IngestReport::default();
    let header = parse_header(bytes)?;
    let count = header.count;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut pos = HEADER_LEN;
    match header.version {
        VERSION => {
            for i in 0..count {
                let Some(rec) = bytes.get(pos..pos + RECORD_LEN) else {
                    absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: truncated ({})", hex_bytes(&bytes[pos..])),
                        TraceError::ParseBinary(format!("truncated at record {i}")),
                    )?;
                    report.truncated = true;
                    return Ok((out, report));
                };
                pos += RECORD_LEN;
                match AccessKind::from_din_label(rec[0]) {
                    None => absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: bad kind {} ({})", rec[0], hex_bytes(rec)),
                        TraceError::ParseBinary(format!("bad kind {} at record {i}", rec[0])),
                    )?,
                    Some(kind) => {
                        let mut addr_bytes = [0u8; 8];
                        addr_bytes.copy_from_slice(&rec[1..9]);
                        let addr = u64::from_le_bytes(addr_bytes);
                        out.push(TraceRecord::new(kind, Address::new(addr)));
                    }
                }
            }
        }
        VERSION_COMPRESSED => {
            let mut last = [0u64; KIND_SLOTS];
            for i in 0..count {
                match decode_token(bytes, pos) {
                    Token::Truncated(len) => {
                        absorb_fault(
                            policy,
                            &mut report,
                            &mut quarantine,
                            &format!(
                                "record {i}: truncated ({})",
                                hex_bytes(&bytes[pos..pos + len])
                            ),
                            TraceError::ParseBinary(format!("truncated at record {i}")),
                        )?;
                        report.truncated = true;
                        return Ok((out, report));
                    }
                    // The token boundary is lost: nothing after an
                    // undecodable varint can be re-framed, so this is
                    // fatal under every policy.
                    Token::Invalid(what) => {
                        return Err(TraceError::ParseBinary(format!("{what} at record {i}")));
                    }
                    Token::Complete(label, zigzag, len) => {
                        let token = &bytes[pos..pos + len];
                        pos += len;
                        match AccessKind::from_din_label(label) {
                            // A bad kind cannot be attributed to a
                            // delta slot, so the token is dropped
                            // without touching the tables; framing
                            // stays intact.
                            None => absorb_fault(
                                policy,
                                &mut report,
                                &mut quarantine,
                                &format!("record {i}: bad kind {label} ({})", hex_bytes(token)),
                                TraceError::ParseBinary(format!("bad kind {label} at record {i}")),
                            )?,
                            Some(kind) => {
                                let delta = zigzag_decode(zigzag);
                                let slot = label as usize;
                                let addr = last[slot].wrapping_add(delta as u64);
                                last[slot] = addr;
                                out.push(TraceRecord::new(kind, Address::new(addr)));
                            }
                        }
                    }
                }
            }
        }
        _ => unreachable!("version was validated against the supported set above"),
    }
    let trailing = bytes.len() - pos;
    if trailing > 0 {
        absorb_fault(
            policy,
            &mut report,
            &mut quarantine,
            &format!("trailer: {trailing} trailing bytes after final record"),
            TraceError::ParseBinary(format!("{trailing} trailing bytes after final record")),
        )?;
    }
    Ok((out, report))
}

/// A strict streaming iterator over a binary trace slice: yields each
/// record without materializing a `Vec<TraceRecord>`, for single-pass
/// consumers (statistics, digests, filters).
///
/// The header is validated at construction; record-level damage
/// surfaces as an `Err` item with the same message the strict
/// [`read_binary_slice`] would return, after which the iterator fuses.
/// Trailing bytes after the declared final record yield one final
/// `Err`.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, slice::SliceRecords, TraceRecord};
///
/// let recs = vec![TraceRecord::read(0x10), TraceRecord::read(0x20)];
/// let mut buf = Vec::new();
/// binary::write_compressed(&mut buf, &recs)?;
/// let streamed: Result<Vec<_>, _> = SliceRecords::new(&buf)?.collect();
/// assert_eq!(streamed?, recs);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SliceRecords<'a> {
    bytes: &'a [u8],
    pos: usize,
    version: u16,
    count: usize,
    emitted: usize,
    last: [u64; KIND_SLOTS],
    fused: bool,
}

impl<'a> SliceRecords<'a> {
    /// Validates the header and positions the iterator at the first
    /// record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ParseBinary`] for a truncated or corrupt
    /// header, with the same messages as [`read_binary_slice`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceError> {
        let header = parse_header(bytes)?;
        Ok(SliceRecords {
            bytes,
            pos: HEADER_LEN,
            version: header.version,
            count: header.count,
            emitted: 0,
            last: [0u64; KIND_SLOTS],
            fused: false,
        })
    }

    /// The record count the header declares.
    pub fn declared_records(&self) -> usize {
        self.count
    }

    fn fail(&mut self, msg: String) -> Option<Result<TraceRecord, TraceError>> {
        self.fused = true;
        Some(Err(TraceError::ParseBinary(msg)))
    }
}

impl Iterator for SliceRecords<'_> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused {
            return None;
        }
        if self.emitted == self.count {
            let trailing = self.bytes.len() - self.pos;
            self.fused = true;
            if trailing > 0 {
                return Some(Err(TraceError::ParseBinary(format!(
                    "{trailing} trailing bytes after final record"
                ))));
            }
            return None;
        }
        let i = self.emitted;
        if self.version == VERSION {
            let Some(rec) = self.bytes.get(self.pos..self.pos + RECORD_LEN) else {
                return self.fail(format!("truncated at record {i}"));
            };
            self.pos += RECORD_LEN;
            let Some(kind) = AccessKind::from_din_label(rec[0]) else {
                return self.fail(format!("bad kind {} at record {i}", rec[0]));
            };
            let mut addr_bytes = [0u8; 8];
            addr_bytes.copy_from_slice(&rec[1..9]);
            self.emitted += 1;
            Some(Ok(TraceRecord::new(
                kind,
                Address::new(u64::from_le_bytes(addr_bytes)),
            )))
        } else {
            match decode_token(self.bytes, self.pos) {
                Token::Truncated(_) => self.fail(format!("truncated at record {i}")),
                Token::Invalid(what) => self.fail(format!("{what} at record {i}")),
                Token::Complete(label, zigzag, len) => {
                    self.pos += len;
                    let Some(kind) = AccessKind::from_din_label(label) else {
                        return self.fail(format!("bad kind {label} at record {i}"));
                    };
                    let delta = zigzag_decode(zigzag);
                    let slot = label as usize;
                    let addr = self.last[slot].wrapping_add(delta as u64);
                    self.last[slot] = addr;
                    self.emitted += 1;
                    Some(Ok(TraceRecord::new(kind, Address::new(addr))))
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.fused {
            return (0, Some(0));
        }
        let left = self.count - self.emitted;
        // +1 for a possible trailing-bytes error item.
        (0, Some(left + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{read_binary, write_binary, write_compressed};

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::ifetch(0),
            TraceRecord::read(u64::MAX),
            TraceRecord::write(0x1234_5678_9abc_def0),
        ]
    }

    #[test]
    fn slice_round_trips_both_versions() {
        let recs = sample();
        for packed in [false, true] {
            let mut buf = Vec::new();
            if packed {
                write_compressed(&mut buf, &recs).unwrap();
            } else {
                write_binary(&mut buf, &recs).unwrap();
            }
            assert_eq!(read_binary_slice(&buf).unwrap(), recs);
            let streamed: Vec<_> = SliceRecords::new(&buf)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(streamed, recs);
        }
    }

    #[test]
    fn slice_empty_round_trip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        assert!(read_binary_slice(&buf).unwrap().is_empty());
        assert_eq!(SliceRecords::new(&buf).unwrap().count(), 0);
    }

    #[test]
    fn slice_errors_match_read_path() {
        // A grab-bag of damage; the property suite does this
        // exhaustively — this is the fast smoke version.
        let recs = sample();
        for packed in [false, true] {
            let mut clean = Vec::new();
            if packed {
                write_compressed(&mut clean, &recs).unwrap();
            } else {
                write_binary(&mut clean, &recs).unwrap();
            }
            for mutate in [
                |b: &mut Vec<u8>| b[0] = b'X',
                |b: &mut Vec<u8>| b[4] = 99,
                |b: &mut Vec<u8>| b[6] ^= 1,
                |b: &mut Vec<u8>| {
                    b.truncate(17);
                },
                |b: &mut Vec<u8>| b.push(0xaa),
                |b: &mut Vec<u8>| b[HEADER_LEN] = 0x07, // bad kind (v1) / harmless (v2)
            ] {
                let mut buf = clean.clone();
                mutate(&mut buf);
                let via_read = read_binary(buf.as_slice());
                let via_slice = read_binary_slice(&buf);
                match (via_read, via_slice) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    (a, b) => panic!("outcome mismatch: read={a:?} slice={b:?}"),
                }
            }
        }
    }

    #[test]
    fn streaming_iterator_reports_trailing_bytes() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(&[0xaa; 7]);
        let items: Vec<_> = SliceRecords::new(&buf).unwrap().collect();
        assert_eq!(items.len(), sample().len() + 1);
        let err = items.last().unwrap().as_ref().unwrap_err();
        assert!(err.to_string().contains("7 trailing bytes"), "{err}");
    }

    #[test]
    fn streaming_iterator_fuses_after_error() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[HEADER_LEN] = 9;
        let mut it = SliceRecords::new(&buf).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn declared_records_reports_header_count() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, &sample()).unwrap();
        assert_eq!(SliceRecords::new(&buf).unwrap().declared_records(), 3);
    }
}
