//! Compact binary trace formats.
//!
//! Text `.din` traces are convenient but bulky (≈12 bytes per reference).
//! Two binary layouts share a 16-byte header:
//!
//! ```text
//! header:  magic "MLCT" (4 bytes) | version u16 LE | header check u16 LE |
//!          record count u64 LE
//! ```
//!
//! The header check is a 16-bit fold of FNV-1a over the other 14 header
//! bytes, so a corrupted version or record count is rejected before any
//! payload is interpreted — without it, a v1↔v2 version flip could decode
//! a payload under the wrong codec and still "succeed".
//!
//! **Version 1** (fixed width, [`write_binary`]): one 9-byte record per
//! reference — `kind u8 (din label) | address u64 LE`. Deliberately
//! trivial, so any tool can produce or consume it in a dozen lines.
//!
//! **Version 2** (compressed, [`write_compressed`]): one variable-length
//! token per reference. The first byte holds the kind (2 bits), the low
//! 5 bits of `zigzag(delta)` and a continuation flag; remaining zigzag
//! bits follow as standard LEB128. `delta` is the address difference
//! from the previous reference *of the same kind*, so sequential
//! instruction fetches and stack-local data references cost a single
//! byte each — typically 4–6× smaller than v1.
//!
//! [`read_binary`] reads either version transparently.

use std::io::{self, BufRead, Read, Write};

use crate::error::TraceError;
use crate::fault::{absorb_fault, hex_bytes, FaultPolicy, IngestReport};
use crate::record::{AccessKind, Address, TraceRecord};

/// The 4-byte magic at the start of every binary trace.
pub const MAGIC: [u8; 4] = *b"MLCT";

/// The fixed-width format version.
pub const VERSION: u16 = 1;

/// The delta-compressed format version.
pub const VERSION_COMPRESSED: u16 = 2;

pub(crate) const HEADER_LEN: usize = 16;
pub(crate) const RECORD_LEN: usize = 9;

/// Slots in the v2 per-kind delta tables, indexed by Dinero label.
pub(crate) const KIND_SLOTS: usize = AccessKind::COUNT;

// The v2 codec keeps one delta base per access kind, indexed by din
// label; verify at compile time that the labels are exactly
// `0..KIND_SLOTS` so no variant can alias another slot.
const _: () = {
    let mut seen = [false; KIND_SLOTS];
    let mut i = 0;
    while i < KIND_SLOTS {
        let label = AccessKind::ALL[i].din_label() as usize;
        assert!(label < KIND_SLOTS, "din label outside the delta table");
        assert!(!seen[label], "two access kinds share a din label");
        seen[label] = true;
        i += 1;
    }
};

/// The header integrity check: FNV-1a over the 16 header bytes with the
/// check field itself zeroed, folded to 16 bits.
pub(crate) fn header_check(header: &[u8; HEADER_LEN]) -> u16 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, &b) in header.iter().enumerate() {
        let b = if i == 6 || i == 7 { 0 } else { b };
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
}

/// Builds a header for `version` and `count`, including the check field.
pub(crate) fn make_header(version: u16, count: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&version.to_le_bytes());
    header[8..16].copy_from_slice(&count.to_le_bytes());
    let check = header_check(&header);
    header[6..8].copy_from_slice(&check.to_le_bytes());
    header
}

/// Writes a trace to `w` in the binary format.
///
/// `records` must be an exact-size collection because the record count is
/// part of the header; pass a slice or `Vec`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, TraceRecord};
///
/// let recs = vec![TraceRecord::ifetch(0x4), TraceRecord::write(0x100)];
/// let mut buf = Vec::new();
/// binary::write_binary(&mut buf, &recs)?;
/// assert_eq!(binary::read_binary(buf.as_slice())?, recs);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn write_binary<W: Write>(w: W, records: &[TraceRecord]) -> Result<(), TraceError> {
    let mut w = io::BufWriter::new(w);
    w.write_all(&make_header(VERSION, records.len() as u64))?;
    for r in records {
        let mut rec = [0u8; RECORD_LEN];
        rec[0] = r.kind.din_label();
        rec[1..9].copy_from_slice(&r.addr.get().to_le_bytes());
        w.write_all(&rec)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an entire binary trace.
///
/// # Errors
///
/// Returns [`TraceError::ParseBinary`] if the magic, version, record count
/// or any record is malformed, or [`TraceError::Io`] on I/O failure.
pub fn read_binary<R: Read>(reader: R) -> Result<Vec<TraceRecord>, TraceError> {
    read_binary_with(reader, FaultPolicy::Fail, None).map(|(records, _)| records)
}

/// Reads `buf.len()` bytes unless the stream ends first; `Ok(n)` is the
/// byte count delivered (so a short count distinguishes clean EOF from
/// an I/O error).
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match reader.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => n += m,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// Reads a binary trace under a [`FaultPolicy`].
///
/// Recoverable faults under [`FaultPolicy::Skip`] — each quarantined
/// (as a hex-dumped sidecar line) and skipped until the budget runs
/// out:
///
/// * a record with an invalid kind byte, in either version (v2 tokens
///   frame independently of the kind bits, so the stream stays in
///   sync);
/// * a payload that ends before the declared record count — the missing
///   tail counts as **one** quarantined record and sets
///   [`IngestReport::truncated`];
/// * trailing bytes after the final record (one quarantined record).
///
/// Always fatal, regardless of policy: header corruption (nothing
/// after a bad header can be trusted), an undecodable v2 varint (the
/// token boundary is lost, so the stream cannot be resynchronised),
/// and genuine I/O errors.
///
/// # Errors
///
/// Under [`FaultPolicy::Fail`], exactly the errors of [`read_binary`].
/// Under [`FaultPolicy::Skip`], [`TraceError::FaultBudget`] once the
/// budget is exceeded, the fatal cases above, or any I/O error.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, FaultPolicy, TraceRecord};
///
/// let recs = vec![TraceRecord::ifetch(0x4), TraceRecord::write(0x100)];
/// let mut buf = Vec::new();
/// binary::write_binary(&mut buf, &recs)?;
/// buf[16] = 7; // corrupt the first record's kind byte
/// let (records, report) =
///     binary::read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 1 }, None)?;
/// assert_eq!(records, vec![TraceRecord::write(0x100)]);
/// assert_eq!(report.quarantined, 1);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn read_binary_with<R: Read>(
    reader: R,
    policy: FaultPolicy,
    quarantine: Option<&mut dyn Write>,
) -> Result<(Vec<TraceRecord>, IngestReport), TraceError> {
    let mut quarantine = quarantine;
    let mut report = IngestReport::default();
    let mut reader = io::BufReader::new(reader);
    let mut header = [0u8; HEADER_LEN];
    reader
        .read_exact(&mut header)
        .map_err(|_| TraceError::ParseBinary("truncated header".into()))?;
    if header[..4] != MAGIC {
        return Err(TraceError::ParseBinary("bad magic".into()));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION && version != VERSION_COMPRESSED {
        return Err(TraceError::ParseBinary(format!(
            "unsupported version {version}"
        )));
    }
    let stored_check = u16::from_le_bytes([header[6], header[7]]);
    if stored_check != header_check(&header) {
        return Err(TraceError::ParseBinary(
            "header check mismatch (corrupt version or record count)".into(),
        ));
    }
    let mut count_bytes = [0u8; 8];
    count_bytes.copy_from_slice(&header[8..16]);
    let count = u64::from_le_bytes(count_bytes);
    let count: usize = count
        .try_into()
        .map_err(|_| TraceError::ParseBinary("record count overflows usize".into()))?;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    match version {
        VERSION => {
            let mut rec = [0u8; RECORD_LEN];
            let mut i = 0;
            while i < count {
                // Fast path: decode every whole record already sitting
                // in the reader's buffer straight from the slice — one
                // fill_buf/consume round trip per buffer, not per
                // record.
                let buffered = match reader.fill_buf() {
                    Ok(buf) => buf,
                    // Retried by the slow path's `read_full`.
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => &[],
                    Err(e) => return Err(e.into()),
                };
                if buffered.len() >= RECORD_LEN {
                    let whole = (buffered.len() / RECORD_LEN).min(count - i);
                    let mut used = 0;
                    for _ in 0..whole {
                        let rec = &buffered[used..used + RECORD_LEN];
                        used += RECORD_LEN;
                        match AccessKind::from_din_label(rec[0]) {
                            None => absorb_fault(
                                policy,
                                &mut report,
                                &mut quarantine,
                                &format!("record {i}: bad kind {} ({})", rec[0], hex_bytes(rec)),
                                TraceError::ParseBinary(format!(
                                    "bad kind {} at record {i}",
                                    rec[0]
                                )),
                            )?,
                            Some(kind) => {
                                let mut addr_bytes = [0u8; 8];
                                addr_bytes.copy_from_slice(&rec[1..9]);
                                let addr = u64::from_le_bytes(addr_bytes);
                                out.push(TraceRecord::new(kind, Address::new(addr)));
                            }
                        }
                        i += 1;
                    }
                    reader.consume(used);
                    continue;
                }
                // Slow path: a record spanning a buffer refill, or the
                // stream's tail.
                let got = read_full(&mut reader, &mut rec)?;
                if got < RECORD_LEN {
                    absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: truncated ({})", hex_bytes(&rec[..got])),
                        TraceError::ParseBinary(format!("truncated at record {i}")),
                    )?;
                    report.truncated = true;
                    return Ok((out, report));
                }
                match AccessKind::from_din_label(rec[0]) {
                    None => absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: bad kind {} ({})", rec[0], hex_bytes(&rec)),
                        TraceError::ParseBinary(format!("bad kind {} at record {i}", rec[0])),
                    )?,
                    Some(kind) => {
                        let mut addr_bytes = [0u8; 8];
                        addr_bytes.copy_from_slice(&rec[1..9]);
                        let addr = u64::from_le_bytes(addr_bytes);
                        out.push(TraceRecord::new(kind, Address::new(addr)));
                    }
                }
                i += 1;
            }
        }
        VERSION_COMPRESSED => {
            // A v2 token is at most 1 + 10 bytes; with that many
            // buffered, a slice decode cannot hit a spurious
            // truncation.
            const MAX_TOKEN: usize = 11;
            let mut last = [0u64; KIND_SLOTS];
            let mut i = 0;
            while i < count {
                // Fast path: decode tokens straight from the buffered
                // slice while a whole worst-case token fits.
                let buffered = match reader.fill_buf() {
                    Ok(buf) => buf,
                    // Retried by the slow path's `read_full`.
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => &[],
                    Err(e) => return Err(e.into()),
                };
                if buffered.len() >= MAX_TOKEN {
                    let mut used = 0;
                    while i < count && used + MAX_TOKEN <= buffered.len() {
                        match crate::slice::decode_token(buffered, used) {
                            // Unreachable with MAX_TOKEN bytes
                            // available, but fall through to the
                            // byte-wise path rather than trusting that.
                            crate::slice::Token::Truncated(_) => break,
                            crate::slice::Token::Invalid(what) => {
                                return Err(TraceError::ParseBinary(format!(
                                    "{what} at record {i}"
                                )));
                            }
                            crate::slice::Token::Complete(label, zigzag, len) => {
                                let token = &buffered[used..used + len];
                                used += len;
                                match AccessKind::from_din_label(label) {
                                    None => absorb_fault(
                                        policy,
                                        &mut report,
                                        &mut quarantine,
                                        &format!(
                                            "record {i}: bad kind {label} ({})",
                                            hex_bytes(token)
                                        ),
                                        TraceError::ParseBinary(format!(
                                            "bad kind {label} at record {i}"
                                        )),
                                    )?,
                                    Some(kind) => {
                                        let delta = zigzag_decode(zigzag);
                                        let slot = label as usize;
                                        let addr = last[slot].wrapping_add(delta as u64);
                                        last[slot] = addr;
                                        out.push(TraceRecord::new(kind, Address::new(addr)));
                                    }
                                }
                                i += 1;
                            }
                        }
                    }
                    reader.consume(used);
                    if used > 0 {
                        continue;
                    }
                }
                // Slow path: a token spanning a buffer refill, or the
                // stream's tail.
                let mut first = [0u8; 1];
                if read_full(&mut reader, &mut first)? == 0 {
                    absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: truncated ()"),
                        TraceError::ParseBinary(format!("truncated at record {i}")),
                    )?;
                    report.truncated = true;
                    return Ok((out, report));
                }
                let mut token = vec![first[0]];
                let label = first[0] & 0b11;
                let mut zigzag = u64::from((first[0] >> 2) & 0x1f);
                if first[0] & 0x80 != 0 {
                    match read_varint_capturing(&mut reader, &mut token) {
                        Ok(rest) => zigzag |= rest << 5,
                        Err(VarintFault::Io(e)) => return Err(e.into()),
                        Err(VarintFault::Truncated) => {
                            absorb_fault(
                                policy,
                                &mut report,
                                &mut quarantine,
                                &format!("record {i}: truncated ({})", hex_bytes(&token)),
                                TraceError::ParseBinary(format!("truncated at record {i}")),
                            )?;
                            report.truncated = true;
                            return Ok((out, report));
                        }
                        // The token boundary is lost: nothing after an
                        // undecodable varint can be re-framed, so this
                        // is fatal under every policy.
                        Err(VarintFault::Invalid(what)) => {
                            return Err(TraceError::ParseBinary(format!("{what} at record {i}")));
                        }
                    }
                }
                match AccessKind::from_din_label(label) {
                    // A bad kind cannot be attributed to a delta slot,
                    // so the token is dropped without touching the
                    // tables; framing stays intact, though later
                    // records in the corrupted record's original slot
                    // may drift by its lost delta.
                    None => absorb_fault(
                        policy,
                        &mut report,
                        &mut quarantine,
                        &format!("record {i}: bad kind {label} ({})", hex_bytes(&token)),
                        TraceError::ParseBinary(format!("bad kind {label} at record {i}")),
                    )?,
                    Some(kind) => {
                        let delta = zigzag_decode(zigzag);
                        let slot = label as usize;
                        let addr = last[slot].wrapping_add(delta as u64);
                        last[slot] = addr;
                        out.push(TraceRecord::new(kind, Address::new(addr)));
                    }
                }
                i += 1;
            }
        }
        _ => unreachable!("version was validated against the supported set above"),
    }
    // Trailing bytes after the declared count indicate a corrupt header
    // (count smaller than the payload) or concatenated files. Drain the
    // stream so the report can name the exact excess.
    let trailing = io::copy(&mut reader, &mut io::sink())?;
    if trailing > 0 {
        absorb_fault(
            policy,
            &mut report,
            &mut quarantine,
            &format!("trailer: {trailing} trailing bytes after final record"),
            TraceError::ParseBinary(format!("{trailing} trailing bytes after final record")),
        )?;
    }
    Ok((out, report))
}

/// Writes a trace in the delta-compressed v2 format (see module docs).
/// Read it back with [`read_binary`], which handles both versions.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Examples
///
/// ```
/// use mlc_trace::{binary, TraceRecord};
///
/// let recs: Vec<_> = (0..1000u64).map(|i| TraceRecord::ifetch(i * 4)).collect();
/// let mut fixed = Vec::new();
/// binary::write_binary(&mut fixed, &recs)?;
/// let mut packed = Vec::new();
/// binary::write_compressed(&mut packed, &recs)?;
/// assert_eq!(binary::read_binary(packed.as_slice())?, recs);
/// // Sequential fetches compress to ~1 byte per record.
/// assert!(packed.len() < fixed.len() / 4);
/// # Ok::<(), mlc_trace::TraceError>(())
/// ```
pub fn write_compressed<W: Write>(w: W, records: &[TraceRecord]) -> Result<(), TraceError> {
    let mut w = io::BufWriter::new(w);
    w.write_all(&make_header(VERSION_COMPRESSED, records.len() as u64))?;
    let mut last = [0u64; KIND_SLOTS];
    let mut buf = [0u8; 10];
    for r in records {
        let slot = r.kind.din_label() as usize;
        let delta = r.addr.get().wrapping_sub(last[slot]) as i64;
        last[slot] = r.addr.get();
        let zigzag = zigzag_encode(delta);
        let mut first = r.kind.din_label() | (((zigzag & 0x1f) as u8) << 2);
        let rest = zigzag >> 5;
        if rest != 0 {
            first |= 0x80;
            w.write_all(&[first])?;
            let n = write_varint(rest, &mut buf);
            w.write_all(&buf[..n])?;
        } else {
            w.write_all(&[first])?;
        }
    }
    w.flush()?;
    Ok(())
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub(crate) fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128-encodes `v` into `buf`, returning the byte count (≤ 10).
#[inline]
fn write_varint(mut v: u64, buf: &mut [u8; 10]) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            return n + 1;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// Why a varint could not be decoded — split three ways because the
/// degraded-mode reader treats each differently (stop early, fatal
/// parse error, fatal I/O error respectively).
enum VarintFault {
    /// The stream ended mid-varint.
    Truncated,
    /// The encoding itself is invalid; the stream cannot be resynced.
    Invalid(&'static str),
    /// The underlying reader failed.
    Io(io::Error),
}

/// Decodes an LEB128 varint of at most 10 bytes, appending each
/// consumed byte to `token` so callers can quarantine the exact bytes.
///
/// A `u64` needs at most 10 LEB128 bytes, and the 10th byte can carry
/// only the top bit of the value; both a continuation past 10 bytes and
/// significant bits beyond 64 are rejected instead of silently wrapping
/// the decoded value.
fn read_varint_capturing<R: BufRead>(
    reader: &mut R,
    token: &mut Vec<u8>,
) -> Result<u64, VarintFault> {
    const MAX_BYTES: usize = 10;
    let mut value = 0u64;
    let mut i = 0;
    loop {
        let buf = match reader.fill_buf() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(VarintFault::Io(e)),
            Ok(buf) => buf,
        };
        if buf.is_empty() {
            return Err(VarintFault::Truncated);
        }
        // Decode as far as this buffer allows, consuming exactly the
        // bytes the byte-at-a-time decoder would have read.
        let mut used = 0;
        let mut done = None;
        for &byte in buf {
            used += 1;
            token.push(byte);
            let payload = u64::from(byte & 0x7f);
            if i == MAX_BYTES - 1 && payload > 1 {
                done = Some(Err(VarintFault::Invalid("varint overflows 64 bits")));
                break;
            }
            value |= payload << (7 * i);
            i += 1;
            if byte & 0x80 == 0 {
                done = Some(Ok(value));
                break;
            }
            if i == MAX_BYTES {
                done = Some(Err(VarintFault::Invalid("varint continues past 10 bytes")));
                break;
            }
        }
        reader.consume(used);
        if let Some(result) = done {
            return result;
        }
    }
}

/// [`read_varint_capturing`] with the `io::Error` shape the varint unit
/// tests and external callers expect.
#[cfg(test)]
fn read_varint<R: BufRead>(reader: &mut R) -> io::Result<u64> {
    let mut token = Vec::new();
    read_varint_capturing(reader, &mut token).map_err(|f| match f {
        VarintFault::Io(e) => e,
        VarintFault::Truncated => io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint"),
        VarintFault::Invalid(what) => io::Error::new(io::ErrorKind::InvalidData, what),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::ifetch(0),
            TraceRecord::read(u64::MAX),
            TraceRecord::write(0x1234_5678_9abc_def0),
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &recs).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + RECORD_LEN * recs.len());
        assert_eq!(read_binary(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn empty_round_trip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        assert!(read_binary(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn compressed_round_trip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_compressed(&mut buf, &recs).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn compressed_round_trip_synthetic_workload() {
        use crate::synth::{workload::Preset, MultiProgramGenerator};
        let recs = MultiProgramGenerator::new(Preset::Vms1.config(2))
            .unwrap()
            .generate_records(30_000);
        let mut fixed = Vec::new();
        write_binary(&mut fixed, &recs).unwrap();
        let mut packed = Vec::new();
        write_compressed(&mut packed, &recs).unwrap();
        assert_eq!(read_binary(packed.as_slice()).unwrap(), recs);
        assert!(
            packed.len() * 3 < fixed.len(),
            "compressed {} vs fixed {}",
            packed.len(),
            fixed.len()
        );
    }

    #[test]
    fn compressed_empty_round_trip() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, &[]).unwrap();
        assert!(read_binary(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn compressed_handles_extreme_deltas() {
        let recs = vec![
            TraceRecord::read(0),
            TraceRecord::read(u64::MAX),
            TraceRecord::read(0),
            TraceRecord::ifetch(u64::MAX / 2),
            TraceRecord::write(1),
        ];
        let mut buf = Vec::new();
        write_compressed(&mut buf, &recs).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), recs);
    }

    #[test]
    fn compressed_rejects_truncation() {
        let recs = sample();
        let mut buf = Vec::new();
        write_compressed(&mut buf, &recs).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 4, -4, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = [0u8; 10];
        for v in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35] {
            let n = write_varint(v, &mut buf);
            let back = read_varint(&mut &buf[..n]).unwrap();
            assert_eq!(back, v);
        }
        assert_eq!(write_varint(0, &mut buf), 1);
        assert_eq!(write_varint(127, &mut buf), 1);
        assert_eq!(write_varint(128, &mut buf), 2);
        assert_eq!(write_varint(u64::MAX, &mut buf), 10);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_binary(buf.as_slice()),
            Err(TraceError::ParseBinary(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[4] = 99;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.push(0);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn trailing_byte_count_is_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(&[0xaa; 7]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("7 trailing bytes"),
            "want exact excess in the message, got: {err}"
        );
    }

    #[test]
    fn rejects_count_smaller_than_payload() {
        // A consistent header (valid check) declaring 1 record over a
        // 3-record payload: the 18 excess bytes must be an error, not a
        // silently shortened trace.
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[..HEADER_LEN].copy_from_slice(&make_header(VERSION, 1));
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("18 trailing bytes"), "{err}");
    }

    #[test]
    fn rejects_compressed_count_smaller_than_payload() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, &sample()).unwrap();
        buf[..HEADER_LEN].copy_from_slice(&make_header(VERSION_COMPRESSED, 1));
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn rejects_header_check_mismatch() {
        for flip in [6usize, 7] {
            let mut buf = Vec::new();
            write_binary(&mut buf, &sample()).unwrap();
            buf[flip] ^= 0x01;
            let err = read_binary(buf.as_slice()).unwrap_err();
            assert!(err.to_string().contains("header check"), "{err}");
        }
    }

    #[test]
    fn rejects_version_flip_between_formats() {
        // v1 payload relabelled as v2 (and vice versa) must fail on the
        // header check instead of decoding under the wrong codec.
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[4..6].copy_from_slice(&VERSION_COMPRESSED.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());

        let mut buf = Vec::new();
        write_compressed(&mut buf, &sample()).unwrap();
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn varint_rejects_continuation_past_ten_bytes() {
        let bytes = [0x80u8; 11];
        let err = read_varint(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("10 bytes"), "{err}");
    }

    #[test]
    fn varint_rejects_overflow_in_tenth_byte() {
        // Nine continuation bytes then a final byte with more than the
        // single bit a u64 has left: previously the high bits were
        // silently discarded.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let err = read_varint(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("overflows"), "{err}");

        // The maximum canonical encoding still decodes.
        let mut max = [0xffu8; 10];
        max[9] = 0x01;
        assert_eq!(read_varint(&mut &max[..]).unwrap(), u64::MAX);
    }

    #[test]
    fn compressed_rejects_overlong_varint_token() {
        // kind Read, continuation set, followed by an 11-byte varint.
        let mut buf = make_header(VERSION_COMPRESSED, 1).to_vec();
        buf.push(0x80);
        buf.extend_from_slice(&[0x80u8; 10]);
        buf.push(0x00);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[HEADER_LEN] = 7;
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad kind"));
    }

    #[test]
    fn rejects_truncated_header() {
        let err = read_binary(&b"MLC"[..]).unwrap_err();
        assert!(err.to_string().contains("truncated header"));
    }

    #[test]
    fn degraded_matches_strict_on_clean_input() {
        let recs = sample();
        let mut fixed = Vec::new();
        write_binary(&mut fixed, &recs).unwrap();
        let mut packed = Vec::new();
        write_compressed(&mut packed, &recs).unwrap();
        for buf in [fixed, packed] {
            let (got, report) =
                read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 0 }, None).unwrap();
            assert_eq!(got, recs);
            assert_eq!(report, IngestReport::default());
        }
    }

    #[test]
    fn degraded_fail_policy_matches_strict_messages() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[HEADER_LEN] = 7;
        let strict = read_binary(buf.as_slice()).unwrap_err();
        let degraded = read_binary_with(buf.as_slice(), FaultPolicy::Fail, None).unwrap_err();
        assert_eq!(strict.to_string(), degraded.to_string());
    }

    #[test]
    fn degraded_v1_quarantines_bad_kind() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[HEADER_LEN + RECORD_LEN] = 9; // record 1's kind byte
        let mut sidecar = Vec::new();
        let (got, report) = read_binary_with(
            buf.as_slice(),
            FaultPolicy::Skip { budget: 1 },
            Some(&mut sidecar),
        )
        .unwrap();
        assert_eq!(
            got,
            vec![
                TraceRecord::ifetch(0),
                TraceRecord::write(0x1234_5678_9abc_def0)
            ]
        );
        assert_eq!(report.quarantined, 1);
        assert!(!report.truncated);
        let sidecar = String::from_utf8(sidecar).unwrap();
        assert!(sidecar.starts_with("record 1: bad kind 9 (09"), "{sidecar}");
    }

    #[test]
    fn degraded_v1_truncated_tail_stops_early() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 4); // last record loses its tail
        let mut sidecar = Vec::new();
        let (got, report) = read_binary_with(
            buf.as_slice(),
            FaultPolicy::Skip { budget: 1 },
            Some(&mut sidecar),
        )
        .unwrap();
        assert_eq!(
            got,
            vec![TraceRecord::ifetch(0), TraceRecord::read(u64::MAX)]
        );
        assert_eq!(report.quarantined, 1);
        assert!(report.truncated);
        assert!(
            String::from_utf8(sidecar)
                .unwrap()
                .starts_with("record 2: truncated ("),
            "sidecar names the partial record"
        );
    }

    #[test]
    fn degraded_v2_skips_bad_kind_without_desync() {
        // sample() compresses to: ifetch(0) -> 0x02 (1 byte), then
        // read(u64::MAX). Setting record 1's label bits to 3 makes its
        // kind invalid without touching the continuation flag, so the
        // token still frames and record 2 (a write, a different delta
        // slot) must decode exactly.
        let recs = sample();
        let mut buf = Vec::new();
        write_compressed(&mut buf, &recs).unwrap();
        buf[HEADER_LEN + 1] |= 0b11;
        let mut sidecar = Vec::new();
        let (got, report) = read_binary_with(
            buf.as_slice(),
            FaultPolicy::Skip { budget: 1 },
            Some(&mut sidecar),
        )
        .unwrap();
        assert_eq!(
            got,
            vec![
                TraceRecord::ifetch(0),
                TraceRecord::write(0x1234_5678_9abc_def0)
            ]
        );
        assert_eq!(report.quarantined, 1);
        assert!(
            String::from_utf8(sidecar)
                .unwrap()
                .starts_with("record 1: bad kind 3 ("),
            "sidecar carries the skipped token"
        );
    }

    #[test]
    fn degraded_v2_truncation_stops_early() {
        let mut buf = Vec::new();
        write_compressed(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 1);
        let (got, report) =
            read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 1 }, None).unwrap();
        assert_eq!(got.len(), 2);
        assert!(report.truncated);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn degraded_v2_varint_corruption_is_fatal_even_under_skip() {
        let mut buf = make_header(VERSION_COMPRESSED, 1).to_vec();
        buf.push(0x80);
        buf.extend_from_slice(&[0x80u8; 10]);
        buf.push(0x00);
        let err =
            read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 100 }, None).unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn degraded_trailing_bytes_quarantined() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(&[0xaa; 7]);
        let mut sidecar = Vec::new();
        let (got, report) = read_binary_with(
            buf.as_slice(),
            FaultPolicy::Skip { budget: 1 },
            Some(&mut sidecar),
        )
        .unwrap();
        assert_eq!(got, sample());
        assert_eq!(report.quarantined, 1);
        assert_eq!(
            String::from_utf8(sidecar).unwrap(),
            "trailer: 7 trailing bytes after final record\n"
        );
    }

    #[test]
    fn degraded_budget_exceeded_is_typed() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[HEADER_LEN] = 9;
        buf[HEADER_LEN + RECORD_LEN] = 9;
        let err =
            read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 1 }, None).unwrap_err();
        assert!(matches!(err, TraceError::FaultBudget { budget: 1, .. }));
    }

    #[test]
    fn degraded_header_faults_are_fatal() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(read_binary_with(buf.as_slice(), FaultPolicy::Skip { budget: 100 }, None).is_err());
    }

    #[test]
    fn degraded_io_errors_are_fatal() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        let injected = FaultInjector::new(buf.as_slice(), FaultPlan::io_error(20));
        let err = read_binary_with(injected, FaultPolicy::Skip { budget: 100 }, None).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
    }
}
