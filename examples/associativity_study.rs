//! Set-associativity break-even times: a miniature of the paper's §5.
//!
//! For each L2 size, how much cycle-time degradation can 2-, 4- and
//! 8-way set associativity afford before it stops paying off — measured
//! empirically from simulation and compared against Equation 3 and the
//! 11 ns TTL multiplexor overhead the paper quotes as the realistic
//! implementation cost.
//!
//! Run with `cargo run --release --example associativity_study`.

use mlc::cache::ByteSize;
use mlc::core::{
    empirical_break_even_cycles, BreakEvenInputs, Explorer, Table, TTL_MUX_OVERHEAD_NS,
};
use mlc::sim::machine::BaseMachine;
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = 2_000_000;
    let warmup = records / 2;
    let mut generator = MultiProgramGenerator::new(Preset::Vms2.config(11))?;
    let trace = generator.generate_records(records);
    let explorer = Explorer::new(&trace, warmup);

    let sizes = vec![ByteSize::kib(16), ByteSize::kib(64), ByteSize::kib(256)];
    let cycles: Vec<u64> = (1..=10).collect();
    let at_cycles = 3; // evaluate at the base machine's L2 cycle time
    let cpu_ns = 10.0;

    println!("sweeping 4 associativities over {} sizes …", sizes.len());
    let grids: Vec<_> = [1u32, 2, 4, 8]
        .iter()
        .map(|&w| explorer.l2_grid(&BaseMachine::new(), &sizes, &cycles, w))
        .collect();

    let inputs = BreakEvenInputs {
        m_l1_global: grids[0].m_l1_global,
        mm_read_time_ns: 270.0,
    };

    let mut table = Table::new(
        "cumulative break-even implementation times (ns), empirical vs Equation 3",
        &["L2 size", "ways", "empirical", "eq3", "verdict vs 11ns mux"],
    );
    for (i, &size) in sizes.iter().enumerate() {
        for (g, &ways) in grids[1..].iter().zip(&[2u32, 4, 8]) {
            let empirical =
                empirical_break_even_cycles(&grids[0].column(i), &g.column(i), at_cycles)
                    .map(|c| c * cpu_ns);
            let analytic = inputs.cumulative_break_even_ns(grids[0].l2_global[i], g.l2_global[i]);
            let verdict = match empirical {
                Some(ns) if ns >= TTL_MUX_OVERHEAD_NS => "worth it",
                Some(_) => "not worth it",
                None => "beyond sweep",
            };
            table.row([
                size.to_string(),
                format!("{ways}"),
                empirical
                    .map(|ns| format!("{ns:.1}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{analytic:.1}"),
                verdict.to_string(),
            ]);
        }
    }
    println!("\n{table}");
    println!(
        "L1 global miss ratio {:.4} → Equation 3 multiplies every miss-ratio\n\
         improvement by 1/M_L1 = {:.1}x, which is why associativity pays off at\n\
         L2 even though it rarely does for single-level caches of this size.",
        inputs.m_l1_global,
        1.0 / inputs.m_l1_global
    );
    Ok(())
}
