//! Quickstart: simulate the paper's base machine on a synthetic
//! multiprogramming workload and print the headline metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use mlc::core::{fmt_ratio, Table};
use mlc::sim::{machine, simulate_with_warmup};
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::TraceStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a workload: the vms1 preset mimics one of the paper's
    //    ATUM multiprogramming traces (see DESIGN.md §4).
    let records = 1_000_000;
    let warmup = records / 4;
    let mut generator = MultiProgramGenerator::new(Preset::Vms1.config(42))?;
    let trace = generator.generate_records(records);

    let stats = TraceStats::from_records(trace.iter().copied(), 16)?;
    println!(
        "workload: {} refs ({} ifetch, {} loads, {} stores), {:.1} KB footprint",
        stats.total(),
        stats.ifetches,
        stats.reads,
        stats.writes,
        stats.footprint_bytes() as f64 / 1024.0
    );

    // 2. Build the paper's base machine: 10 ns CPU, split 4 KB L1,
    //    512 KB direct-mapped L2 at 3 CPU cycles, 180/100/120 ns memory.
    let config = machine::base_machine();

    // 3. Simulate, discarding the cold-start region from the statistics.
    let result = simulate_with_warmup(config, trace, warmup)?;

    println!(
        "\nexecuted {} instructions in {} cycles (CPI {:.3}, {:.2} ms at 10 ns)",
        result.instructions,
        result.total_cycles,
        result.cpi().unwrap_or(f64::NAN),
        result.execution_time_ns() / 1e6,
    );

    let mut table = Table::new(
        "per-level read miss ratios (paper §2 definitions)",
        &["level", "local", "global"],
    );
    for (i, level) in result.levels.iter().enumerate() {
        table.row([
            level.name.clone(),
            fmt_ratio(result.local_read_miss_ratio(i).unwrap_or(f64::NAN)),
            fmt_ratio(result.global_read_miss_ratio(i).unwrap_or(f64::NAN)),
        ]);
    }
    println!("\n{table}");
    println!(
        "memory: {} reads, {} writes, {} wait cycles",
        result.memory.reads, result.memory.writes, result.memory.wait_ticks
    );
    Ok(())
}
