//! Optimal-hierarchy search: the paper's stated goal — "find the
//! multi-level hierarchy that maximizes the overall performance while
//! satisfying all the implementation constraints" (§1).
//!
//! A technology rule assigns every L2 organisation the cycle time it
//! could realistically achieve (SRAM access grows with capacity; each
//! associativity doubling costs a TTL multiplexor delay). The optimizer
//! then simulates every candidate and ranks them.
//!
//! Run with `cargo run --release --example optimal_search`.

use mlc::cache::ByteSize;
use mlc::core::{size_ladder, HierarchyOptimizer, Table, TechnologyModel};
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = 2_000_000;
    let warmup = records / 2;
    let mut generator = MultiProgramGenerator::new(Preset::Vms1.config(5))?;
    let trace = generator.generate_records(records);

    let tech = TechnologyModel::default();
    println!(
        "technology rule: {} ns base + {} ns/size-doubling + {} ns/way-doubling at {} ns CPU",
        tech.base_access_ns, tech.ns_per_doubling, tech.ns_per_way_doubling, tech.cpu_cycle_ns
    );

    let optimizer = HierarchyOptimizer::new(&trace, warmup, tech);
    let sizes = size_ladder(ByteSize::kib(16), ByteSize::mib(4));
    let ways = [1u32, 2, 4, 8];
    println!(
        "evaluating {} candidates ({} sizes x {} associativities) …\n",
        sizes.len() * ways.len(),
        sizes.len(),
        ways.len()
    );
    let ranked = optimizer.search(&sizes, &ways);

    let mut table = Table::new(
        "top 10 L2 designs under the technology rule",
        &["rank", "L2 size", "ways", "t_L2 (cyc)", "cycles", "CPI"],
    );
    for (i, c) in ranked.iter().take(10).enumerate() {
        table.row([
            format!("{}", i + 1),
            c.l2_size.to_string(),
            c.l2_ways.to_string(),
            c.l2_cycles.to_string(),
            c.total_cycles().to_string(),
            format!("{:.3}", c.result.cpi().unwrap_or(f64::NAN)),
        ]);
    }
    println!("{table}");

    let best = &ranked[0];
    let worst = ranked.last().expect("non-empty");
    println!(
        "best design: {} {}-way at {} cycles — {:.1}% faster than the worst candidate.",
        best.l2_size,
        best.l2_ways,
        best.l2_cycles,
        100.0 * (worst.total_cycles() - best.total_cycles()) as f64 / worst.total_cycles() as f64
    );
    println!(
        "note how the winner is large and set-associative despite its slower\n\
         cycle time — the paper's §6 conclusion: the L1's filtering makes L2\n\
         cycle time cheap relative to L2 miss ratio."
    );
    Ok(())
}
