//! Simulating a trace file: reads a Dinero `.din` trace (or generates
//! and round-trips a sample if no path is given) and runs it through the
//! base machine.
//!
//! Run with `cargo run --release --example trace_file_sim [trace.din]`.

use std::fs::File;
use std::io::BufReader;

use mlc::sim::{machine, simulate};
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::{binary, din, TraceRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace: Vec<TraceRecord> = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path} …");
            din::read_din(BufReader::new(File::open(&path)?))?
        }
        None => {
            // No input: synthesise a sample, round-trip it through both
            // on-disk formats, and simulate the result.
            println!("no trace given; generating a 200k-reference sample");
            let mut generator = MultiProgramGenerator::new(Preset::Ultrix.config(3))?;
            let records = generator.generate_records(200_000);

            let dir = std::env::temp_dir().join("mlc_trace_example");
            std::fs::create_dir_all(&dir)?;
            let din_path = dir.join("sample.din");
            let bin_path = dir.join("sample.mlct");
            din::write_din(File::create(&din_path)?, records.iter().copied())?;
            binary::write_binary(File::create(&bin_path)?, &records)?;
            println!(
                "wrote {} ({} bytes) and {} ({} bytes)",
                din_path.display(),
                std::fs::metadata(&din_path)?.len(),
                bin_path.display(),
                std::fs::metadata(&bin_path)?.len(),
            );

            let from_din = din::read_din(BufReader::new(File::open(&din_path)?))?;
            let from_bin = binary::read_binary(BufReader::new(File::open(&bin_path)?))?;
            assert_eq!(from_din, records, "din round trip must be lossless");
            assert_eq!(from_bin, records, "binary round trip must be lossless");
            from_din
        }
    };

    println!(
        "simulating {} references on the base machine …",
        trace.len()
    );
    let result = simulate(machine::base_machine(), trace)?;
    println!("{result}");
    Ok(())
}
