//! Design-space exploration: a miniature of the paper's Figures 4-1 and
//! 4-2 — relative execution time over the (L2 size × L2 cycle time)
//! plane, and the lines of constant performance with their slope regions.
//!
//! Run with `cargo run --release --example design_space`.

use mlc::cache::ByteSize;
use mlc::core::{
    constant_performance_lines, fmt_f2, size_ladder, slopes_cycles_per_doubling, Explorer,
    SlopeRegion, Table,
};
use mlc::sim::machine::BaseMachine;
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = 2_000_000;
    let warmup = records / 2;
    let mut generator = MultiProgramGenerator::new(Preset::Mips1.config(7))?;
    let trace = generator.generate_records(records);
    let explorer = Explorer::new(&trace, warmup);

    let sizes = size_ladder(ByteSize::kib(16), ByteSize::mib(1));
    let cycles: Vec<u64> = (1..=8).collect();
    println!(
        "sweeping {} sizes x {} cycle times = {} simulations …",
        sizes.len(),
        cycles.len(),
        sizes.len() * cycles.len()
    );
    let grid = explorer.l2_grid(&BaseMachine::new(), &sizes, &cycles, 1);

    // Figure 4-1 style table: relative execution time per (size, t_L2).
    let mut headers = vec!["t_L2 \\ size".to_string()];
    headers.extend(sizes.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new("relative execution time (min = 1.00)", &header_refs);
    for (j, &c) in cycles.iter().enumerate() {
        let mut row = vec![format!("{c} cyc")];
        row.extend((0..sizes.len()).map(|i| fmt_f2(grid.relative(i, j))));
        table.row(row);
    }
    println!("\n{table}");

    // Figure 4-2 style: lines of constant performance and their slopes.
    let levels = [1.1, 1.3, 1.5, 2.0];
    let mut lines_table = Table::new(
        "lines of constant performance (interpolated t_L2 per size)",
        &header_refs,
    );
    for line in constant_performance_lines(&grid, &levels) {
        let mut row = vec![format!("rel {:.1}", line.relative)];
        for &size in &sizes {
            let cell = line
                .points
                .iter()
                .find(|p| p.size == size)
                .map(|p| format!("{:.2}", p.cycles))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        lines_table.row(row);

        let slopes = slopes_cycles_per_doubling(&line);
        if let Some((at, s)) = slopes.first() {
            println!(
                "rel {:.1}: slope at {} = {:.2} cyc/doubling ({})",
                line.relative,
                at,
                s,
                SlopeRegion::classify(*s)
            );
        }
    }
    println!("\n{lines_table}");
    println!(
        "L1 global read miss ratio {:.4}; the 1/M_L1 leverage of Equation 2 is {:.1}x",
        grid.m_l1_global,
        1.0 / grid.m_l1_global
    );
    Ok(())
}
