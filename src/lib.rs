//! `mlc` — multi-level cache hierarchy simulation and analysis.
//!
//! A from-scratch Rust reproduction of Przybylski, Horowitz & Hennessy,
//! *Characteristics of Performance-Optimal Multi-Level Cache
//! Hierarchies* (ISCA 1989): a trace-driven, timing-accurate multi-level
//! cache simulator, synthetic multiprogramming workloads standing in for
//! the paper's eight traces, and the paper's analytical models
//! (Equations 1–3) with a design-space exploration harness that
//! regenerates every figure.
//!
//! This crate is a facade: it re-exports the workspace's library crates.
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`trace`] | Trace records, `.din`/binary formats, synthetic workloads |
//! | [`cache`] | Functional set-associative caches, split I/D, policies |
//! | [`mem`] | DRAM timing, buses, write buffers |
//! | [`sim`] | The multi-level timing simulator and machine presets |
//! | [`core`] | Equations 1–3, sweeps, iso-performance analysis |
//! | [`check`] | Static hierarchy linter and runtime invariant checker |
//!
//! # Examples
//!
//! Simulate the paper's base machine on a synthetic VMS-like workload:
//!
//! ```
//! use mlc::sim::{machine, simulate_with_warmup};
//! use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
//!
//! let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(42))
//!     .expect("preset is valid");
//! let trace = gen.generate_records(100_000);
//! let result = simulate_with_warmup(machine::base_machine(), trace, 25_000)?;
//! println!(
//!     "CPI {:.2}, L2 global miss {:.4}",
//!     result.cpi().unwrap(),
//!     result.global_read_miss_ratio(1).unwrap()
//! );
//! # Ok::<(), mlc::sim::SimConfigError>(())
//! ```

pub use mlc_cache as cache;
pub use mlc_check as check;
pub use mlc_core as core;
pub use mlc_mem as mem;
pub use mlc_sim as sim;
pub use mlc_trace as trace;
