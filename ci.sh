#!/usr/bin/env sh
# Offline CI gate: formatting, lints, build, tests.
# Everything runs with --offline; the workspace has no external deps.
set -eu

cd "$(dirname "$0")"

# The committed build is portable (see .cargo/config.toml). Host tuning
# is opt-in: MLC_NATIVE=1 ./ci.sh builds and tests with the host ISA.
if [ "${MLC_NATIVE:-0}" = "1" ]; then
    echo "==> MLC_NATIVE=1: building with -C target-cpu=native"
    RUSTFLAGS="${RUSTFLAGS:-} -C target-cpu=native"
    export RUSTFLAGS
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy with check-invariants (deny warnings)"
cargo clippy --workspace --all-targets --offline \
    --features mlc-sim/check-invariants -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> mlc-lint self-check (fixtures)"
./target/release/mlc-lint crates/cli/tests/fixtures/good_base.mlc \
    crates/cli/tests/fixtures/good_three_level.mlc
if ./target/release/mlc-lint crates/cli/tests/fixtures/bad_hierarchy.mlc \
    > /dev/null 2>&1; then
    echo "ci.sh: bad fixture unexpectedly passed lint" >&2
    exit 1
fi

echo "==> sweep-engine bench smoke (1 sample, small trace)"
MLC_BENCH_SAMPLES=1 MLC_SWEEP_RECORDS=20000 \
    MLC_BENCH_OUT="$(pwd)/target/mlc-results/BENCH_sweep_smoke.json" \
    MLC_BENCH_INGEST_OUT="$(pwd)/target/mlc-results/BENCH_ingest_smoke.json" \
    cargo bench -p mlc-bench --bench sweep_engines --offline

echo "==> per-stage perf smoke (ratios asserted, absolutes warn-only)"
ingest_smoke=target/mlc-results/BENCH_ingest_smoke.json
jq -e '.schema == "mlc-bench/1" and .bench == "ingest_stages"' \
    "$ingest_smoke" > /dev/null
# Engine-structure ratios are machine-independent enough to gate on:
# the one-pass engine amortizes the functional pass over the whole
# cycle ladder and must stay well clear of 2x the exhaustive engine.
if ! jq -e '.stages.sweep.speedup >= 2' "$ingest_smoke" > /dev/null; then
    echo "ci.sh: one-pass engine < 2x exhaustive on the smoke workload" >&2
    jq '.stages.sweep' "$ingest_smoke" >&2
    exit 1
fi
# The sharded stack pass needs real cores to win; on single-core
# runners run_sharded falls back to the serial pass (1 shard), so the
# ratio is only gated when sharding actually engaged.
if jq -e '.stages.stack.shards >= 2' "$ingest_smoke" > /dev/null; then
    if ! jq -e '.stages.stack.speedup >= 1.5' "$ingest_smoke" > /dev/null; then
        echo "ci.sh: sharded stack pass < 1.5x serial with >= 2 shards" >&2
        jq '.stages.stack' "$ingest_smoke" >&2
        exit 1
    fi
else
    echo "    (single shard on this runner; sharded-stack ratio not gated)"
fi
# Absolute records/s depends on the runner: warn, never fail.
if ! jq -e '.stages.sweep.onepass.records_per_s >= 50e6' \
    "$ingest_smoke" > /dev/null; then
    echo "ci.sh: WARNING: one-pass below 50M records/s on this runner" >&2
fi
if ! jq -e '.stages.ingest.slice.records_per_s >= 20e6' \
    "$ingest_smoke" > /dev/null; then
    echo "ci.sh: WARNING: slice ingest below 20M records/s on this runner" >&2
fi

echo "==> mlc-sweep one-pass end-to-end"
./target/release/mlc-gen --preset mips1 --records 50000 --seed 7 \
    --out target/ci_sweep_trace.din
./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
    --sizes 32K:256K --cycles 1:4 --warmup-frac 0.25 --engine onepass
./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
    --sizes 32K:64K --cycles 1:2 --warmup-frac 0.25 --cross-check

echo "==> manifest determinism smoke"
# The manifest records argv, so both runs must use IDENTICAL arguments;
# the first manifest is copied aside before the second run overwrites
# it. Only lines with an `_ms` timing key may differ.
mkdir -p target/mlc-results
run_sweep_with_manifest() {
    ./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
        --sizes 32K:64K --cycles 1:2 --engine onepass \
        --metrics-out target/mlc-results/ci_sweep.jsonl > /dev/null
}
run_sweep_with_manifest
cp target/mlc-results/ci_sweep.manifest.json target/mlc-results/ci_sweep.manifest.first.json
run_sweep_with_manifest
grep -v '_ms"' target/mlc-results/ci_sweep.manifest.first.json \
    > target/mlc-results/ci_manifest_a.stripped
grep -v '_ms"' target/mlc-results/ci_sweep.manifest.json \
    > target/mlc-results/ci_manifest_b.stripped
if ! cmp -s target/mlc-results/ci_manifest_a.stripped target/mlc-results/ci_manifest_b.stripped; then
    echo "ci.sh: manifest non-timing fields differ between identical runs" >&2
    diff target/mlc-results/ci_manifest_a.stripped target/mlc-results/ci_manifest_b.stripped >&2 || true
    exit 1
fi
grep -q '"digest": "fnv1a64:' target/mlc-results/ci_sweep.manifest.json
grep -q '_ms"' target/mlc-results/ci_sweep.manifest.json
grep -q '"schema":"mlc-metrics/1"' target/mlc-results/ci_sweep.jsonl

echo "==> kill-and-resume journal smoke"
# An interrupted-then-resumed journaled sweep must produce a CSV
# byte-identical to an uninterrupted run. Use a trace long enough that
# SIGKILL lands mid-sweep, but tolerate the sweep winning the race.
./target/release/mlc-gen --preset mips1 --records 2000000 --seed 21 \
    --out target/ci_journal_trace.din > /dev/null
./target/release/mlc-sweep --trace target/ci_journal_trace.din \
    --sizes 16K:256K --cycles 1:6 --engine exhaustive \
    --out target/mlc-results/ci_journal_plain.csv > /dev/null
rm -f target/mlc-results/ci_journal.jsonl \
    target/mlc-results/ci_journal_resumed.csv
./target/release/mlc-sweep --trace target/ci_journal_trace.din \
    --sizes 16K:256K --cycles 1:6 --engine exhaustive \
    --journal target/mlc-results/ci_journal.jsonl \
    --out target/mlc-results/ci_journal_resumed.csv > /dev/null 2>&1 &
sweep_pid=$!
# Wait for at least one committed row, then kill -9.
tries=0
while ! grep -q '"row"' target/mlc-results/ci_journal.jsonl 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ] || ! kill -0 "$sweep_pid" 2>/dev/null; then
        break
    fi
    sleep 0.05
done
kill -9 "$sweep_pid" 2>/dev/null || true
wait "$sweep_pid" 2>/dev/null || true
if ! grep -q '"row"' target/mlc-results/ci_journal.jsonl 2>/dev/null; then
    echo "ci.sh: no journal row committed before the kill" >&2
    exit 1
fi
if [ -s target/mlc-results/ci_journal_resumed.csv ] \
    && cmp -s target/mlc-results/ci_journal_plain.csv \
        target/mlc-results/ci_journal_resumed.csv; then
    echo "    (sweep finished before the kill; resume still exercised below)"
fi
./target/release/mlc-sweep --trace target/ci_journal_trace.din \
    --sizes 16K:256K --cycles 1:6 --engine exhaustive \
    --journal target/mlc-results/ci_journal.jsonl --resume \
    --out target/mlc-results/ci_journal_resumed.csv > /dev/null
if ! cmp -s target/mlc-results/ci_journal_plain.csv \
    target/mlc-results/ci_journal_resumed.csv; then
    echo "ci.sh: resumed sweep CSV differs from the uninterrupted run" >&2
    diff target/mlc-results/ci_journal_plain.csv \
        target/mlc-results/ci_journal_resumed.csv >&2 || true
    exit 1
fi

echo "==> degraded trace ingestion smoke"
cp target/ci_sweep_trace.din target/ci_faulty_trace.din
printf 'not a record\n3 zz\n' >> target/ci_faulty_trace.din
if ./target/release/mlc-run --trace target/ci_faulty_trace.din \
    > /dev/null 2>&1; then
    echo "ci.sh: strict ingestion accepted a malformed trace" >&2
    exit 1
fi
./target/release/mlc-run --trace target/ci_faulty_trace.din \
    --trace-faults skip:4 > /dev/null
if [ "$(wc -l < target/ci_faulty_trace.din.quarantine)" != 2 ]; then
    echo "ci.sh: quarantine sidecar should hold exactly 2 records" >&2
    exit 1
fi

echo "==> attribution + event-trace smoke"
./target/release/mlc-run --trace target/ci_sweep_trace.din \
    --attribution \
    --events-out target/mlc-results/ci_attr_events.jsonl \
    --events-every 32 \
    --perfetto-out target/mlc-results/ci_attr_perfetto.json \
    --metrics-out target/mlc-results/ci_attr_metrics.jsonl \
    > target/mlc-results/ci_attr_stdout.txt
if ! grep -q "execution-time attribution" target/mlc-results/ci_attr_stdout.txt \
    || ! grep -q "Equation 1 total off by" target/mlc-results/ci_attr_stdout.txt; then
    echo "ci.sh: mlc-run --attribution did not print the cross-check" >&2
    exit 1
fi
# Ledger conservation on the real exported metrics: the sim.ledger.*
# counters must sum exactly to sim.total_cycles.
ledger_sum=$(jq -s '[.[] | select(.event == "counter"
        and (.name | startswith("sim.ledger."))) | .value] | add' \
    target/mlc-results/ci_attr_metrics.jsonl)
total_cycles=$(jq -s '[.[] | select(.event == "counter"
        and .name == "sim.total_cycles") | .value] | first' \
    target/mlc-results/ci_attr_metrics.jsonl)
if [ -z "$ledger_sum" ] || [ "$ledger_sum" != "$total_cycles" ]; then
    echo "ci.sh: ledger buckets ($ledger_sum) != total_cycles ($total_cycles)" >&2
    exit 1
fi
if ! jq -s -e '[.[] | select(.event == "hist")] | length >= 4' \
    target/mlc-results/ci_attr_metrics.jsonl > /dev/null; then
    echo "ci.sh: metrics JSONL is missing the histograms" >&2
    exit 1
fi
# mlc-events/1 schema on the meta line.
if ! head -1 target/mlc-results/ci_attr_events.jsonl \
    | jq -e '.event == "meta" and .schema == "mlc-events/1" and .every == 32' \
    > /dev/null; then
    echo "ci.sh: events meta line does not match mlc-events/1" >&2
    exit 1
fi
# Perfetto/Chrome trace: valid JSON, non-empty, slices are complete events.
if ! jq -e '(.otherData.schema == "mlc-chrome-trace/1")
        and (.traceEvents | length > 0)
        and ([.traceEvents[] | select(.ph == "X")] | length > 0)
        and ([.traceEvents[] | select(.ph != "X" and .ph != "M")] | length == 0)' \
    target/mlc-results/ci_attr_perfetto.json > /dev/null; then
    echo "ci.sh: Perfetto JSON failed the schema check" >&2
    exit 1
fi
# The same cross-check from a trace alone, on the paper's base machine.
./target/release/mlc-analyze --trace target/ci_sweep_trace.din \
    --sizes 4K:16K --attribution > target/mlc-results/ci_attr_analyze.txt
if ! grep -q "execution-time attribution" target/mlc-results/ci_attr_analyze.txt \
    || ! grep -q "Equation 1 total off by" target/mlc-results/ci_attr_analyze.txt; then
    echo "ci.sh: mlc-analyze --attribution did not print the cross-check" >&2
    exit 1
fi

echo "==> guaranteed-bounds smoke (mlc-bounds)"
# JSON report: schema + per-level bounds are sane (lo <= hi <= reads).
./target/release/mlc-bounds --trace target/ci_sweep_trace.din \
    --format json > target/mlc-results/ci_bounds.json
if ! jq -e '(.schema == "mlc-bounds/1")
        and (.levels | length >= 2)
        and all(.levels[]; .lo <= .hi and .hi <= .reads_max)' \
    target/mlc-results/ci_bounds.json > /dev/null; then
    echo "ci.sh: mlc-bounds JSON failed the mlc-bounds/1 schema check" >&2
    exit 1
fi
# End-to-end sim-vs-bounds oracle: the cold simulation must land inside
# every guaranteed bound (non-zero exit otherwise).
./target/release/mlc-bounds --trace target/ci_sweep_trace.din --check \
    > target/mlc-results/ci_bounds_check.txt
if ! grep -q "oracle: simulated misses fall inside every guaranteed bound" \
    target/mlc-results/ci_bounds_check.txt; then
    echo "ci.sh: mlc-bounds --check did not confirm the oracle" >&2
    exit 1
fi

echo "==> mlc-serve daemon smoke (cache, kill -9, recover)"
# A sweep submitted to the daemon must produce a CSV byte-identical to
# mlc-sweep on the same flags; a daemon killed -9 mid-sweep must resume
# the interrupted grid on restart and converge on the same bytes; and a
# repeat submission must be answered from the cache without recomputing.
serve_dir=target/mlc-results/ci_serve
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
serve_sock="$serve_dir/mlc-serve.sock"
serve_args="--sizes 32K:128K --cycles 1:4 --warmup-frac 0.25 --engine onepass"
./target/release/mlc-sweep --trace target/ci_sweep_trace.din $serve_args \
    --out "$serve_dir/sweep_direct.csv" > /dev/null
# Phase 1: slow rows so SIGKILL lands mid-sweep deterministically.
MLC_SERVE_ROW_DELAY_MS=1000 ./target/release/mlc-serve \
    --store "$serve_dir/store" --socket "$serve_sock" \
    > "$serve_dir/server1.log" 2>&1 &
serve_pid=$!
tries=0
while [ ! -S "$serve_sock" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: mlc-serve did not create its socket" >&2
        exit 1
    fi
    sleep 0.05
done
./target/release/mlc-client --socket "$serve_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $serve_args --no-wait \
    > "$serve_dir/submit1.txt"
serve_key=$(sed -n 's/^key=//p' "$serve_dir/submit1.txt")
if [ -z "$serve_key" ]; then
    echo "ci.sh: submit did not print a job key" >&2
    exit 1
fi
# Wait for at least one journalled row, then kill -9 the daemon.
tries=0
while ! grep -q '"row"' "$serve_dir"/store/jobs/*.jsonl 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "ci.sh: no spool row committed before the kill" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# The killed daemon leaves a stale socket file behind; remove it so the
# socket-exists wait below observes the *restarted* daemon (which runs
# recovery before binding), not the corpse.
rm -f "$serve_sock"
# Phase 2: restart over the same store; recovery must resume the job.
./target/release/mlc-serve --store "$serve_dir/store" \
    --socket "$serve_sock" > "$serve_dir/server2.log" 2>&1 &
serve_pid=$!
tries=0
while [ ! -S "$serve_sock" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: restarted mlc-serve did not create its socket" >&2
        exit 1
    fi
    sleep 0.05
done
if ! grep -q "resumed in-flight sweep $serve_key" "$serve_dir/server2.log"; then
    echo "ci.sh: restarted daemon did not resume the interrupted sweep" >&2
    cat "$serve_dir/server2.log" >&2
    exit 1
fi
# The resumed job finishes in the background; poll the cache via fetch.
tries=0
until ./target/release/mlc-client --socket "$serve_sock" fetch \
    --key "$serve_key" --out "$serve_dir/recovered.csv" \
    > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -gt 600 ]; then
        echo "ci.sh: resumed sweep never reached the cache" >&2
        exit 1
    fi
    sleep 0.1
done
if ! cmp -s "$serve_dir/sweep_direct.csv" "$serve_dir/recovered.csv"; then
    echo "ci.sh: recovered daemon grid differs from mlc-sweep" >&2
    diff "$serve_dir/sweep_direct.csv" "$serve_dir/recovered.csv" >&2 || true
    exit 1
fi
# Repeat submission: answered from the cache, bit-identical, no compute.
./target/release/mlc-client --socket "$serve_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $serve_args \
    --out "$serve_dir/cached.csv" > "$serve_dir/submit2.txt"
if ! grep -q '^source=memory$' "$serve_dir/submit2.txt"; then
    echo "ci.sh: repeat submission was not served from the memory tier" >&2
    cat "$serve_dir/submit2.txt" >&2
    exit 1
fi
if ! cmp -s "$serve_dir/sweep_direct.csv" "$serve_dir/cached.csv"; then
    echo "ci.sh: cached daemon grid differs from mlc-sweep" >&2
    exit 1
fi
./target/release/mlc-client --socket "$serve_sock" stats --format json \
    > "$serve_dir/stats.json"
if ! jq -e '(.counters.jobs_recovered == 1) and (.counters.jobs_computed == 1)' \
    "$serve_dir/stats.json" > /dev/null; then
    echo "ci.sh: daemon stats disagree with the recovery story" >&2
    cat "$serve_dir/stats.json" >&2
    exit 1
fi
# ping is thin liveness now: proto/version/uptime and nothing else.
./target/release/mlc-client --socket "$serve_sock" ping \
    > "$serve_dir/ping.txt"
if ! grep -q '^proto=mlc-serve/1$' "$serve_dir/ping.txt" \
    || ! grep -q '^uptime_ms=' "$serve_dir/ping.txt" \
    || grep -q '^jobs_' "$serve_dir/ping.txt"; then
    echo "ci.sh: ping is not the thin liveness probe it claims to be" >&2
    cat "$serve_dir/ping.txt" >&2
    exit 1
fi
./target/release/mlc-client --socket "$serve_sock" shutdown > /dev/null
wait "$serve_pid" 2>/dev/null || true

echo "==> mlc-serve chaos smoke (stall reap, ENOSPC heal, tiny-budget eviction)"
# Under injected faults and an abusive client the daemon must shed and
# degrade with typed answers — never hang, never die — and the retrying
# client must converge on bytes identical to mlc-sweep.
chaos_dir=target/mlc-results/ci_chaos
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
chaos_sock="$chaos_dir/mlc-serve.sock"
chaos_args="--sizes 32K:128K --cycles 1:4 --warmup-frac 0.25 --engine onepass"
./target/release/mlc-sweep --trace target/ci_sweep_trace.din $chaos_args \
    --out "$chaos_dir/direct.csv" > /dev/null
# Phase 1: one injected journal ENOSPC, plus a tight io timeout so the
# half-line staller below is reaped instead of pinning a handler.
MLC_SERVE_CHAOS=journal-enospc=1 ./target/release/mlc-serve \
    --store "$chaos_dir/store" --socket "$chaos_sock" \
    --io-timeout-ms 400 > "$chaos_dir/server1.log" 2>&1 &
chaos_pid=$!
tries=0
while [ ! -S "$chaos_sock" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: chaos mlc-serve did not create its socket" >&2
        exit 1
    fi
    sleep 0.05
done
./target/release/mlc-client --socket "$chaos_sock" stall \
    --half-line --hold-ms 1500 > "$chaos_dir/stall.txt" 2>&1 &
stall_pid=$!
# The injected ENOSPC fails the first attempt retryably; the client's
# bounded backoff must heal it without operator help.
if ! ./target/release/mlc-client --socket "$chaos_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $chaos_args \
    --retries 3 --retry-max-ms 400 --out "$chaos_dir/healed.csv" \
    > "$chaos_dir/submit_heal.txt" 2> "$chaos_dir/submit_heal.err"; then
    echo "ci.sh: retrying client did not heal the injected ENOSPC" >&2
    cat "$chaos_dir/submit_heal.err" >&2
    exit 1
fi
if ! grep -q 'retry 1/' "$chaos_dir/submit_heal.err"; then
    echo "ci.sh: chaos fault never fired (no client retry observed)" >&2
    cat "$chaos_dir/submit_heal.err" >&2
    exit 1
fi
if ! cmp -s "$chaos_dir/direct.csv" "$chaos_dir/healed.csv"; then
    echo "ci.sh: healed grid differs from mlc-sweep" >&2
    exit 1
fi
wait "$stall_pid" 2>/dev/null || true
if ! grep -q '^stalled_ms=' "$chaos_dir/stall.txt"; then
    echo "ci.sh: stall client did not run to completion" >&2
    cat "$chaos_dir/stall.txt" >&2
    exit 1
fi
# The daemon survived all of it and accounted for the damage.
./target/release/mlc-client --socket "$chaos_sock" stats --format json \
    > "$chaos_dir/stats1.json"
if ! jq -e '.counters.jobs_computed == 1' "$chaos_dir/stats1.json" > /dev/null; then
    echo "ci.sh: chaos daemon stats disagree (expected one computed job)" >&2
    cat "$chaos_dir/stats1.json" >&2
    exit 1
fi
chaos_bytes=$(jq -r '.tiers.disk.bytes' "$chaos_dir/stats1.json")
if [ -z "$chaos_bytes" ] || [ "$chaos_bytes" = "0" ]; then
    echo "ci.sh: stats did not report the disk-tier bytes" >&2
    exit 1
fi
./target/release/mlc-client --socket "$chaos_sock" shutdown > /dev/null
wait "$chaos_pid" 2>/dev/null || true
# Phase 2: restart with a budget that fits one entry but not two; a
# second grid must evict the first, which then recomputes cleanly.
rm -f "$chaos_sock"
./target/release/mlc-serve --store "$chaos_dir/store" \
    --socket "$chaos_sock" --disk-budget $((chaos_bytes + chaos_bytes / 2)) \
    > "$chaos_dir/server2.log" 2>&1 &
chaos_pid=$!
tries=0
while [ ! -S "$chaos_sock" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: budgeted mlc-serve did not create its socket" >&2
        exit 1
    fi
    sleep 0.05
done
./target/release/mlc-client --socket "$chaos_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" \
    --sizes 16K:64K --cycles 1:4 --warmup-frac 0.25 --engine onepass \
    > /dev/null
./target/release/mlc-client --socket "$chaos_sock" stats --format json \
    > "$chaos_dir/stats2.json"
if ! jq -e '(.tiers.disk.entries == 1) and (.tiers.disk.evictions >= 1)' \
    "$chaos_dir/stats2.json" > /dev/null; then
    echo "ci.sh: tiny disk budget did not evict the LRU entry" >&2
    cat "$chaos_dir/stats2.json" >&2
    exit 1
fi
# The evicted grid is gone from disk but recomputes bit-identically.
./target/release/mlc-client --socket "$chaos_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $chaos_args \
    --out "$chaos_dir/recomputed.csv" > "$chaos_dir/submit_evicted.txt"
if ! grep -q '^source=computed$' "$chaos_dir/submit_evicted.txt"; then
    echo "ci.sh: evicted grid was not recomputed" >&2
    cat "$chaos_dir/submit_evicted.txt" >&2
    exit 1
fi
if ! cmp -s "$chaos_dir/direct.csv" "$chaos_dir/recomputed.csv"; then
    echo "ci.sh: recomputed grid after eviction differs from mlc-sweep" >&2
    exit 1
fi
./target/release/mlc-client --socket "$chaos_sock" shutdown > /dev/null
wait "$chaos_pid" 2>/dev/null || true

echo "==> mlc-serve telemetry smoke (trace ids, mlc-stats/1, flight recorder)"
# A traced submission must carry its id end to end (client output,
# committed journal, shutdown span export); the stats document must
# version itself, count the repeat fetch as a memory hit, and conserve
# samples across stages; the flight recorder must rotate at its budget.
obs_dir=target/mlc-results/ci_obs
rm -rf "$obs_dir"
mkdir -p "$obs_dir"
obs_sock="$obs_dir/mlc-serve.sock"
obs_args="--sizes 32K:128K --cycles 1:4 --warmup-frac 0.25 --engine onepass"
./target/release/mlc-serve --store "$obs_dir/store" --socket "$obs_sock" \
    --stats-out "$obs_dir/flight.jsonl" --stats-every-ms 50 \
    --stats-max-bytes 1K --events-out "$obs_dir/spans.json" \
    > "$obs_dir/server.log" 2>&1 &
obs_pid=$!
tries=0
while [ ! -S "$obs_sock" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: telemetry mlc-serve did not create its socket" >&2
        exit 1
    fi
    sleep 0.05
done
./target/release/mlc-client --socket "$obs_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $obs_args \
    --trace-id ci-trace-e2e --out "$obs_dir/cold.csv" \
    > "$obs_dir/submit_cold.txt"
if ! grep -q '^trace_id=ci-trace-e2e$' "$obs_dir/submit_cold.txt" \
    || ! grep -q '^source=computed$' "$obs_dir/submit_cold.txt"; then
    echo "ci.sh: traced cold submit did not echo its trace id" >&2
    cat "$obs_dir/submit_cold.txt" >&2
    exit 1
fi
if ! grep -q '"trace_id":"ci-trace-e2e"' "$obs_dir"/store/cache/*.jsonl; then
    echo "ci.sh: committed journal header lost the trace id" >&2
    exit 1
fi
mem_hits_before=$(./target/release/mlc-client --socket "$obs_sock" \
    stats --format json | jq '.tiers.memory.hits')
./target/release/mlc-client --socket "$obs_sock" submit \
    --trace "$(pwd)/target/ci_sweep_trace.din" $obs_args \
    --out "$obs_dir/warm.csv" > "$obs_dir/submit_warm.txt"
if ! grep -q '^source=memory$' "$obs_dir/submit_warm.txt"; then
    echo "ci.sh: repeat submission was not a memory-tier hit" >&2
    cat "$obs_dir/submit_warm.txt" >&2
    exit 1
fi
./target/release/mlc-client --socket "$obs_sock" stats --format json \
    > "$obs_dir/stats.json"
if ! jq -e '.schema == "mlc-stats/1"' "$obs_dir/stats.json" > /dev/null; then
    echo "ci.sh: stats document is not tagged mlc-stats/1" >&2
    exit 1
fi
if ! jq -e ".tiers.memory.hits > $mem_hits_before" \
    "$obs_dir/stats.json" > /dev/null; then
    echo "ci.sh: memory-tier hits did not increment on the repeat fetch" >&2
    cat "$obs_dir/stats.json" >&2
    exit 1
fi
# Conservation: across all stages the recorder holds at least one span
# per completed job (a computed job alone crosses >= 4 stages).
if ! jq -e '([.stages[] | select(type == "object") | .count] | add)
        >= .counters.jobs_computed' "$obs_dir/stats.json" > /dev/null; then
    echo "ci.sh: stage histograms hold fewer samples than completed jobs" >&2
    cat "$obs_dir/stats.json" >&2
    exit 1
fi
# mlc-top renders the same document as a one-shot dashboard.
./target/release/mlc-client --socket "$obs_sock" top --iterations 1 \
    > "$obs_dir/top.txt"
if ! grep -q 'mlc-stats/1' "$obs_dir/top.txt" \
    || ! grep -q '^stage  *count' "$obs_dir/top.txt"; then
    echo "ci.sh: mlc-top did not render the stats dashboard" >&2
    cat "$obs_dir/top.txt" >&2
    exit 1
fi
# Flight recorder: the tiny byte budget must force a rotation.
tries=0
while [ ! -f "$obs_dir/flight.jsonl.1" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "ci.sh: flight recorder never rotated at a 1K budget" >&2
        exit 1
    fi
    sleep 0.05
done
if ! head -1 "$obs_dir/flight.jsonl.1" \
    | jq -e '.schema == "mlc-stats/1"' > /dev/null; then
    echo "ci.sh: rotated flight-recorder snapshot is not mlc-stats/1" >&2
    exit 1
fi
./target/release/mlc-client --socket "$obs_sock" shutdown > /dev/null
wait "$obs_pid" 2>/dev/null || true
# The shutdown span export is Perfetto-loadable and carries the id.
if ! jq -e '(.otherData.schema == "mlc-serve-spans/1")
        and (.traceEvents | length > 0)' "$obs_dir/spans.json" > /dev/null; then
    echo "ci.sh: span export failed the mlc-serve-spans/1 schema check" >&2
    exit 1
fi
if ! grep -q 'ci-trace-e2e' "$obs_dir/spans.json"; then
    echo "ci.sh: span export lost the submission's trace id" >&2
    exit 1
fi

echo "==> trace fault-injection tests"
cargo test -p mlc-trace --offline -q --test fault_props

echo "==> ci passed"
