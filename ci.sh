#!/usr/bin/env sh
# Offline CI gate: formatting, lints, build, tests.
# Everything runs with --offline; the workspace has no external deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy with check-invariants (deny warnings)"
cargo clippy --workspace --all-targets --offline \
    --features mlc-sim/check-invariants -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> mlc-lint self-check (fixtures)"
./target/release/mlc-lint crates/cli/tests/fixtures/good_base.mlc \
    crates/cli/tests/fixtures/good_three_level.mlc
if ./target/release/mlc-lint crates/cli/tests/fixtures/bad_hierarchy.mlc \
    > /dev/null 2>&1; then
    echo "ci.sh: bad fixture unexpectedly passed lint" >&2
    exit 1
fi

echo "==> sweep-engine bench smoke (1 sample, small trace)"
MLC_BENCH_SAMPLES=1 MLC_SWEEP_RECORDS=20000 \
    MLC_BENCH_OUT="$(pwd)/target/mlc-results/BENCH_sweep_smoke.json" \
    cargo bench -p mlc-bench --bench sweep_engines --offline

echo "==> mlc-sweep one-pass end-to-end"
./target/release/mlc-gen --preset mips1 --records 50000 --seed 7 \
    --out target/ci_sweep_trace.din
./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
    --sizes 32K:256K --cycles 1:4 --warmup-frac 0.25 --engine onepass
./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
    --sizes 32K:64K --cycles 1:2 --warmup-frac 0.25 --cross-check

echo "==> manifest determinism smoke"
# The manifest records argv, so both runs must use IDENTICAL arguments;
# the first manifest is copied aside before the second run overwrites
# it. Only lines with an `_ms` timing key may differ.
mkdir -p target/mlc-results
run_sweep_with_manifest() {
    ./target/release/mlc-sweep --trace target/ci_sweep_trace.din \
        --sizes 32K:64K --cycles 1:2 --engine onepass \
        --metrics-out target/mlc-results/ci_sweep.jsonl > /dev/null
}
run_sweep_with_manifest
cp target/mlc-results/ci_sweep.manifest.json target/mlc-results/ci_sweep.manifest.first.json
run_sweep_with_manifest
grep -v '_ms"' target/mlc-results/ci_sweep.manifest.first.json \
    > target/mlc-results/ci_manifest_a.stripped
grep -v '_ms"' target/mlc-results/ci_sweep.manifest.json \
    > target/mlc-results/ci_manifest_b.stripped
if ! cmp -s target/mlc-results/ci_manifest_a.stripped target/mlc-results/ci_manifest_b.stripped; then
    echo "ci.sh: manifest non-timing fields differ between identical runs" >&2
    diff target/mlc-results/ci_manifest_a.stripped target/mlc-results/ci_manifest_b.stripped >&2 || true
    exit 1
fi
grep -q '"digest": "fnv1a64:' target/mlc-results/ci_sweep.manifest.json
grep -q '_ms"' target/mlc-results/ci_sweep.manifest.json
grep -q '"schema":"mlc-metrics/1"' target/mlc-results/ci_sweep.jsonl

echo "==> ci passed"
