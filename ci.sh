#!/usr/bin/env sh
# Offline CI gate: formatting, lints, build, tests.
# Everything runs with --offline; the workspace has no external deps.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo clippy with check-invariants (deny warnings)"
cargo clippy --workspace --all-targets --offline \
    --features mlc-sim/check-invariants -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test --workspace --offline -q

echo "==> mlc-lint self-check (fixtures)"
./target/release/mlc-lint crates/cli/tests/fixtures/good_base.mlc \
    crates/cli/tests/fixtures/good_three_level.mlc
if ./target/release/mlc-lint crates/cli/tests/fixtures/bad_hierarchy.mlc \
    > /dev/null 2>&1; then
    echo "ci.sh: bad fixture unexpectedly passed lint" >&2
    exit 1
fi

echo "==> ci passed"
